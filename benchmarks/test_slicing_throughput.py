"""Sliced-run throughput: the modeled parallel speedup of checkpoint
slicing, recorded in ``BENCH_slicing.json`` (repo root) plus
``benchmarks/results/slicing_throughput.txt``.

The measurement follows the repo's counters-to-modeled-time idiom (see
``benchmarks/conftest.py``): every component cost is *measured* on this
machine — the seeding pass's spec-release times and each slice window's
in-process execution time — and the parallel wall clock is then
*modeled* by list-scheduling those measured jobs onto W workers (job
*i* cannot start before the seeding pass released its spec).  This
keeps the benchmark meaningful on CI boxes with fewer cores than
workers: process-pool wall clock on an oversubscribed host measures the
scheduler, not the slicer.  The model assumes the seeding pass and the
W workers each get a core.

Matrix: slices x workers over {1, 2, 4}^2 with the critical-path
``balanced`` plan, against the measured serial run of the same workload
(plain CONFIG_BNSD, no slice barriers).  The identity guard re-checks
that the stitched pieces reproduce the serial report before any number
is recorded.

Quick mode (the default) runs fewer repeats; set
``SLICING_BENCH_FULL=1`` for the full measurement.

Run with:
``PYTHONPATH=src python -m pytest benchmarks/test_slicing_throughput.py -q``
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import time

import pytest
from conftest import write_result

from repro.core import CONFIG_BNSD, CoSimulation
from repro.core.summary import stitch_slices
from repro.dut import NUTSHELL, DutSystem
from repro.parallel import iter_slice_specs, plan_windows
from repro.parallel.jobs import runner_for
from repro.toolkit import render_report
from repro.workloads import build

pytestmark = pytest.mark.bench

FULL = os.environ.get("SLICING_BENCH_FULL", "") not in ("", "0")
REPEATS = 4 if FULL else 2
ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_slicing.json"
HOTLOOP_JSON = ROOT / "BENCH_hotloop.json"

WORKLOAD = build("memory_churn", array_kb=32, passes=2)
PLAN = "balanced"
SLICE_COUNTS = (1, 2, 4)
WORKER_COUNTS = (1, 2, 4)

#: Results accumulated by the tests and flushed once per session.
_RESULTS: dict = {}
_CACHE: dict = {}


# ----------------------------------------------------------------------
# Measurement helpers
# ----------------------------------------------------------------------

def _run_cycles() -> int:
    """The cycle the workload actually finishes at (bare-DUT probe), so
    the slice windows cover the run instead of an unused budget."""
    if "run_cycles" not in _CACHE:
        probe = DutSystem(NUTSHELL, seed=2025)
        probe.load_image(WORKLOAD.image)
        cycles = 0
        while not probe.finished() and cycles < WORKLOAD.max_cycles:
            probe.cycle()
            cycles += 1
        _CACHE["run_cycles"] = cycles
    return _CACHE["run_cycles"]


def _elementwise_min(best, sample):
    if best is None:
        return list(sample)
    return [min(a, b) for a, b in zip(best, sample)]


def _measurements():
    """All timing components, measured in interleaved best-of rounds.

    One round = one serial run + (seed pass + slice runs) for every
    slice count, so a host-contention spike hits one round of *every*
    component instead of sinking a single number and skewing the
    ratios; best-of filters the dip (round 0 is warm-up).

    Returns ``(serial_dt, per_slices)`` where ``per_slices[n]`` is
    ``(avail, durs, pieces, epoch)``: ``avail[i]`` is when the lazy
    spec generator released slice *i*'s job (the seeding pass runs on
    its own core, so this is job *i*'s earliest start), ``durs[i]`` the
    in-process execution time of slice *i*'s window, and ``pieces`` the
    slice summaries for the identity guard.
    """
    if "data" in _CACHE:
        return _CACHE["data"]
    cycles = _run_cycles()
    run_slice = runner_for("slice")
    serial_best = float("inf")
    best_gaps = {n: None for n in SLICE_COUNTS}
    best_durs = {n: None for n in SLICE_COUNTS}
    pieces = {}
    for attempt in range(REPEATS + 1):
        cosim = CoSimulation(NUTSHELL, CONFIG_BNSD, WORKLOAD.image,
                             seed=2025)
        gc.collect()  # GC debt from the previous round's cosims must
        t0 = time.perf_counter()  # not be charged to this component
        result = cosim.run(max_cycles=cycles)
        dt = time.perf_counter() - t0
        assert result.passed
        if attempt:
            serial_best = min(serial_best, dt)
        for slices in SLICE_COUNTS:
            specs = []
            gaps = []
            gc.collect()
            t_prev = time.perf_counter()
            for spec in iter_slice_specs(NUTSHELL, CONFIG_BNSD,
                                         WORKLOAD.image,
                                         max_cycles=cycles, slices=slices,
                                         seed=2025, plan=PLAN):
                now = time.perf_counter()
                gaps.append(now - t_prev)
                t_prev = now
                specs.append(spec)
            durs = []
            summaries = []
            for spec in specs:
                gc.collect()
                t0 = time.perf_counter()
                summaries.append(run_slice(spec.params))
                durs.append(time.perf_counter() - t0)
            if attempt:
                best_gaps[slices] = _elementwise_min(best_gaps[slices],
                                                     gaps)
                best_durs[slices] = _elementwise_min(best_durs[slices],
                                                     durs)
                pieces[slices] = summaries
    per_slices = {}
    for slices in SLICE_COUNTS:
        avail = []
        total = 0.0
        for gap in best_gaps[slices]:
            total += gap
            avail.append(total)
        epoch = plan_windows(cycles, slices, PLAN)[0]
        per_slices[slices] = (avail, best_durs[slices], pieces[slices],
                              epoch)
    _CACHE["data"] = (serial_best, per_slices)
    return _CACHE["data"]


def _makespan(avail, durs, workers: int) -> float:
    """List-schedule the measured jobs onto ``workers`` cores: job *i*
    starts at ``max(avail[i], first free worker)``."""
    free = [0.0] * workers
    span = 0.0
    for released, duration in zip(avail, durs):
        slot = min(range(workers), key=free.__getitem__)
        start = max(released, free[slot])
        free[slot] = start + duration
        span = max(span, free[slot])
    return span


def _flush_results():
    if not _RESULTS:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text())
        except ValueError:
            existing = {}
    existing.update(_RESULTS)
    existing["mode"] = "full" if FULL else "quick"
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True)
                          + "\n")
    lines = [f"slicing throughput ({existing['mode']} mode, plan "
             f"{existing.get('plan', PLAN)})"]
    serial = existing.get("serial", {})
    if serial:
        lines.append(
            f"  serial: {serial['cycles_per_sec']:,.0f} cyc/s over "
            f"{existing.get('run_cycles', 0):,} cycles "
            f"({existing.get('workload', '?')})")
    matrix = existing.get("matrix", {})
    for slices_key, row in sorted(matrix.items()):
        for workers_key, cell in sorted(row.items()):
            if not workers_key.startswith("workers="):
                continue
            lines.append(
                f"  {slices_key:9s} {workers_key:9s}: "
                f"{cell['modeled_cycles_per_sec']:>9,.0f} cyc/s "
                f"modeled = {cell['modeled_speedup']:.2f}x serial")
    write_result("slicing_throughput", "\n".join(lines))


@pytest.fixture(scope="module", autouse=True)
def _persist_results():
    yield
    _flush_results()


# ----------------------------------------------------------------------
# 1. Identity guard: the measured pieces stitch to the serial report
# ----------------------------------------------------------------------

def test_sliced_pieces_reproduce_serial_report():
    cycles = _run_cycles()
    _, per_slices = _measurements()
    _, _, pieces, epoch = per_slices[4]
    summary, stats = stitch_slices(pieces)
    cosim = CoSimulation(NUTSHELL,
                         CONFIG_BNSD.with_(slice_epoch_cycles=epoch),
                         WORKLOAD.image, seed=2025)
    serial = cosim.run(max_cycles=cycles)
    assert cosim._skipped_barriers == 0
    assert serial.summarize() == summary
    assert render_report(serial.stats) == render_report(stats)
    _RESULTS["identity"] = {
        "slices": len(pieces),
        "epoch_cycles": epoch,
        "byte_identical": True,
    }


# ----------------------------------------------------------------------
# 2. The slices x workers speedup matrix
# ----------------------------------------------------------------------

def test_modeled_speedup_matrix():
    cycles = _run_cycles()
    serial_dt, per_slices = _measurements()
    matrix = {}
    for slices in SLICE_COUNTS:
        avail, durs, pieces, epoch = per_slices[slices]
        row = {
            "epoch_cycles": epoch,
            "windows": [piece.end_cycle - piece.start_cycle
                        for piece in pieces],
            "spec_release_seconds": [round(t, 4) for t in avail],
            "slice_run_seconds": [round(t, 4) for t in durs],
        }
        for workers in WORKER_COUNTS:
            span = _makespan(avail, durs, workers)
            row[f"workers={workers}"] = {
                "modeled_seconds": round(span, 4),
                "modeled_cycles_per_sec": round(cycles / span),
                "modeled_speedup": round(serial_dt / span, 3),
            }
        matrix[f"slices={slices}"] = row
    hotloop_ref = None
    if HOTLOOP_JSON.exists():
        try:
            hotloop_ref = json.loads(HOTLOOP_JSON.read_text())[
                "end_to_end"]["batch_squash_vs_baseline_config"][
                "bnsd_cycles_per_sec"]
        except (ValueError, KeyError):
            hotloop_ref = None
    _RESULTS.update({
        "workload": "memory_churn(array_kb=32, passes=2)",
        "dut": "nutshell",
        "config": CONFIG_BNSD.name,
        "plan": PLAN,
        "run_cycles": cycles,
        "serial": {
            "seconds": round(serial_dt, 4),
            "cycles_per_sec": round(cycles / serial_dt),
        },
        "hotloop_reference_cycles_per_sec": hotloop_ref,
        "matrix": matrix,
    })
    # Degenerate cells must not model phantom speedup: one slice on one
    # worker is the serial run plus slicing overhead.
    solo = matrix["slices=1"]["workers=1"]["modeled_speedup"]
    assert 0.7 <= solo <= 1.1, matrix["slices=1"]
    # Workers beyond slices change nothing.
    assert (matrix["slices=2"]["workers=2"]["modeled_seconds"]
            == matrix["slices=2"]["workers=4"]["modeled_seconds"])
    # The headline number: 4 slices on 4 workers must clear 1.5x.
    headline = matrix["slices=4"]["workers=4"]["modeled_speedup"]
    assert headline >= 1.5, matrix["slices=4"]
