"""Table 6: the bug catalogue campaign, grouped by category.

Runs the full 19-fault injection campaign through the fully-optimised
framework and regenerates the PR-per-category summary.
"""

import pytest
from conftest import write_result

from repro.core import CONFIG_BNSD, CoSimulation
from repro.dut import FAULT_CATALOGUE, XIANGSHAN_DEFAULT, fault_by_name

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tests"))
from test_faults_campaign import _image_for  # noqa: E402


@pytest.fixture(scope="module")
def campaign():
    outcomes = []
    for spec in FAULT_CATALOGUE:
        image, trigger, budget = _image_for(spec.name)
        cosim = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD, image)
        fault_by_name(spec.name).install(cosim.dut.cores[0], trigger)
        result = cosim.run(max_cycles=budget)
        outcomes.append((spec, result))
    return outcomes


def test_table6(campaign, benchmark):
    def regenerate() -> str:
        grouped = {}
        for spec, result in campaign:
            grouped.setdefault(spec.category, []).append((spec, result))
        lines = ["Table 6: bugs detected by category"]
        for category, entries in grouped.items():
            detected = sum(1 for _s, r in entries if r.mismatch is not None)
            prs = ", ".join(s.pull_request for s, _r in entries)
            lines.append(f"\n{category}")
            lines.append(f"  pull requests: {prs}")
            lines.append(f"  detected: {detected}/{len(entries)}")
        return "\n".join(lines)

    text = benchmark(regenerate)
    write_result("table6_bugs", text)

    detected = sum(1 for _spec, result in campaign
                   if result.mismatch is not None)
    assert detected == 19  # all seeded bugs found


def test_replay_localizes_majority(campaign, benchmark):
    localized = benchmark(lambda: sum(
        1 for _spec, result in campaign
        if result.debug_report is not None
        and result.debug_report.localized is not None))
    assert localized >= 15


def test_component_attribution(campaign, benchmark):
    """Behavioural semantics: for most bugs the implicated component of
    the localised event matches (or neighbours) the injection site."""
    def attribution():
        hits = 0
        for spec, result in campaign:
            if result.debug_report is None:
                continue
            if result.debug_report.component == spec.component:
                hits += 1
        return hits

    hits = benchmark(attribution)
    assert hits >= 6
