"""Table 5: optimization breakdown across DUTs and platforms.

The headline experiment: Baseline -> +Batch -> +NonBlock -> +Squash on
NutShell/Palladium, XiangShan/Palladium and XiangShan/FPGA, reproducing
the incremental speedups of the paper's artifact
(reference/perf-log: 14->102->389->1030, 6->24->71->478, 100->1300->2200->7800 KHz).
"""

import pytest
from conftest import LADDER, write_result

from repro.comm import FPGA_VU19P, PALLADIUM
from repro.dut import NUTSHELL, XIANGSHAN_DEFAULT

PAPER = {
    ("NutShell", "Cadence Palladium"): (14, 102, 389, 1030),
    ("XiangShan (Default)", "Cadence Palladium"): (6, 24, 71, 478),
    ("XiangShan (Default)", "Xilinx VU19P FPGA"): (100, 1300, 2200, 7800),
}

CASES = (
    (NUTSHELL, PALLADIUM),
    (XIANGSHAN_DEFAULT, PALLADIUM),
    (XIANGSHAN_DEFAULT, FPGA_VU19P),
)


@pytest.fixture(scope="module")
def ladders(matrix):
    out = {}
    for dut, platform in CASES:
        speeds = []
        for config in LADDER:
            result = matrix.run(dut, config)
            breakdown = result.breakdown(platform, dut.gates_millions,
                                         config.nonblocking)
            speeds.append(breakdown.speed_khz)
        out[(dut.name, platform.name)] = speeds
    return out


def test_table5(ladders, benchmark):
    def regenerate() -> str:
        lines = ["Table 5: optimization breakdown (modeled KHz)",
                 f"{'Setup':34s} {'Baseline':>9s} {'+Batch':>9s} "
                 f"{'+NonBlock':>10s} {'+Squash':>9s}"]
        for (dut_name, platform_name), speeds in ladders.items():
            label = f"{dut_name} on {platform_name.split()[-1]}"
            lines.append(label.ljust(34)
                         + "".join(f" {s:9.1f}" for s in speeds[:2])
                         + f" {speeds[2]:10.1f} {speeds[3]:9.1f}")
            paper = PAPER[(dut_name, platform_name)]
            lines.append(" " * 20 + "paper:".rjust(14)
                         + "".join(f" {p:9.1f}" for p in paper[:2])
                         + f" {paper[2]:10.1f} {paper[3]:9.1f}")
            factors = [s / speeds[0] for s in speeds]
            lines.append(" " * 20 + "speedups:".rjust(14)
                         + "".join(f" {f:9.1f}" for f in factors[:2])
                         + f" {factors[2]:10.1f} {factors[3]:9.1f}")
        return "\n".join(lines)

    text = benchmark(regenerate)
    write_result("table5_breakdown", text)

    for key, speeds in ladders.items():
        paper = PAPER[key]
        # Monotone ladder with a large total factor, like the paper.
        assert speeds == sorted(speeds), key
        total_factor = speeds[3] / speeds[0]
        paper_factor = paper[3] / paper[0]
        assert total_factor > paper_factor / 3, (key, total_factor)
        # Absolute end points within ~2x of the paper's reported speeds.
        assert paper[0] / 3 <= speeds[0] <= paper[0] * 3, key
        assert paper[3] / 3 <= speeds[3] <= paper[3] * 3, key


def test_batch_contribution(ladders, benchmark):
    """Batch alone contributes ~4-13x (paper's range)."""
    factors = benchmark(lambda: {key: speeds[1] / speeds[0]
                                 for key, speeds in ladders.items()})
    for key, factor in factors.items():
        assert 2.5 <= factor <= 20, (key, factor)


def test_squash_reaches_near_dut_speed_on_palladium(ladders, benchmark):
    """On Palladium the fully-optimised co-sim approaches the DUT-only
    speed (478 vs 480 KHz in the paper; >=75% here)."""
    speeds = ladders[("XiangShan (Default)", "Cadence Palladium")]
    dut_only = benchmark(PALLADIUM.dut_clock_khz,
                         XIANGSHAN_DEFAULT.gates_millions)
    assert speeds[3] > 0.75 * dut_only


def test_fpga_remains_communication_bound(ladders, benchmark):
    """On the FPGA even the full ladder stays well below DUT-only speed
    (7.8 vs 50 MHz in the paper): communication still dominates."""
    speeds = ladders[("XiangShan (Default)", "Xilinx VU19P FPGA")]
    dut_only = benchmark(FPGA_VU19P.dut_clock_khz,
                         XIANGSHAN_DEFAULT.gates_millions)
    assert speeds[3] < 0.4 * dut_only
