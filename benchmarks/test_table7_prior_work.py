"""Table 7: comparison with prior hardware-accelerated frameworks."""

import pytest
from conftest import write_result

from repro.comm import FPGA_VU19P, PALLADIUM
from repro.comm.prior import FROMAJO, IBI_CHECK, SBS_CHECK
from repro.core import CONFIG_BNSD, CONFIG_Z
from repro.dut import XIANGSHAN_DEFAULT
from repro.events import all_event_classes


@pytest.fixture(scope="module")
def table(matrix):
    result = matrix.run(XIANGSHAN_DEFAULT, CONFIG_BNSD)
    # Table 7's bytes/instr column is *pre-optimisation* volume (footnote †).
    baseline = matrix.run(XIANGSHAN_DEFAULT, CONFIG_Z)
    raw_bpi = baseline.stats.bytes_per_instruction
    instructions = result.instructions
    ipc = instructions / result.cycles
    rows = []
    for scheme in (IBI_CHECK, SBS_CHECK):
        prior = scheme.evaluate(instructions, ipc)
        rows.append((scheme.name, scheme.platform.name, scheme.state_types,
                     scheme.bytes_per_instr, prior.comm_overhead,
                     prior.dut_only_khz, prior.cosim_speed_khz))
    pldm = result.breakdown(PALLADIUM, XIANGSHAN_DEFAULT.gates_millions, True)
    rows.append(("DiffTest-H", PALLADIUM.name, len(all_event_classes()),
                 raw_bpi,
                 pldm.communication_fraction,
                 PALLADIUM.dut_clock_khz(XIANGSHAN_DEFAULT.gates_millions),
                 pldm.speed_khz))
    fromajo = FROMAJO.evaluate(instructions, ipc)
    rows.append((FROMAJO.name, FROMAJO.platform.name, FROMAJO.state_types,
                 FROMAJO.bytes_per_instr, fromajo.comm_overhead,
                 fromajo.dut_only_khz, fromajo.cosim_speed_khz))
    fpga = result.breakdown(FPGA_VU19P, XIANGSHAN_DEFAULT.gates_millions,
                            True)
    rows.append(("DiffTest-H", FPGA_VU19P.name, len(all_event_classes()),
                 raw_bpi,
                 fpga.communication_fraction,
                 FPGA_VU19P.dut_clock_khz(XIANGSHAN_DEFAULT.gates_millions),
                 fpga.speed_khz))
    return rows


def test_table7(table, benchmark):
    def regenerate() -> str:
        lines = ["Table 7: comparison with prior work",
                 f"{'Work':12s} {'Platform':20s} {'States':>6s} "
                 f"{'B/instr':>8s} {'CommOvh':>8s} {'DUT-only':>10s} "
                 f"{'Co-sim':>10s}"]
        for name, platform, states, bpi, overhead, dut_khz, cosim_khz in table:
            lines.append(f"{name:12s} {platform:20s} {states:6d} "
                         f"{bpi:8.1f} {overhead:8.1%} {dut_khz:10.1f} "
                         f"{cosim_khz:10.1f}")
        return "\n".join(lines)

    text = benchmark(regenerate)
    write_result("table7_prior_work", text)

    rows = {(name, platform): (states, bpi, overhead, dut, cosim)
            for name, platform, states, bpi, overhead, dut, cosim in table}
    dth_pldm = rows[("DiffTest-H", PALLADIUM.name)]
    dth_fpga = rows[("DiffTest-H", FPGA_VU19P.name)]
    ibi = rows[("IBI-check", "IBM AWAN")]
    fromajo = rows[("Fromajo", "FireSim")]

    # Coverage: 32 states vs 2/7 for prior work.
    assert dth_pldm[0] == 32 and ibi[0] == 2 and fromajo[0] == 7
    # Emulator: DiffTest-H reaches a much faster absolute co-sim speed
    # with far lower residual overhead than IBI-check's platform allows.
    assert dth_pldm[4] > 4 * ibi[4]
    assert dth_pldm[2] < 0.30  # paper: 0.4%
    # FPGA: DiffTest-H is ~7.8x faster than Fromajo.
    factor = dth_fpga[4] / fromajo[4]
    assert 3 <= factor <= 20, factor
    # FPGA communication overhead remains dominant (paper: 84%).
    assert dth_fpga[2] > 0.5
