"""Figure 15: resource usage of DiffTest-H across XiangShan configs."""

from conftest import write_result

from repro.analysis import estimate_area
from repro.dut import XIANGSHAN_DEFAULT, XIANGSHAN_DUAL, XIANGSHAN_MINIMAL

CONFIGS = (XIANGSHAN_MINIMAL, XIANGSHAN_DEFAULT, XIANGSHAN_DUAL)


def regenerate() -> str:
    lines = ["Figure 15: resource usage (million gates)",
             f"{'DUT':26s} {'DUT':>8s} {'DT-H(noB)':>10s} {'ovh':>6s} "
             f"{'DT-H(+B)':>9s} {'ovh':>6s}"]
    for config in CONFIGS:
        no_batch = estimate_area(config, with_batch=False)
        with_batch = estimate_area(config, with_batch=True)
        lines.append(
            f"{config.name:26s} {config.gates_millions:8.1f} "
            f"{no_batch.difftest_mgates:10.2f} "
            f"{no_batch.overhead_fraction:6.1%} "
            f"{with_batch.difftest_mgates:9.2f} "
            f"{with_batch.overhead_fraction:6.1%}")
    lines.append("paper anchors: ~6% without Batch, ~25% average with Batch,"
                 " max 26%")
    return "\n".join(lines)


def test_fig15(benchmark):
    text = benchmark(regenerate)
    write_result("fig15_resources", text)

    fractions_no_batch = [estimate_area(c, with_batch=False).overhead_fraction
                          for c in CONFIGS]
    fractions_batch = [estimate_area(c, with_batch=True).overhead_fraction
                       for c in CONFIGS]
    assert all(0.04 <= f <= 0.09 for f in fractions_no_batch)
    average = sum(fractions_batch) / len(fractions_batch)
    assert 0.20 <= average <= 0.30
    assert max(fractions_batch) <= 0.32  # paper max: 26%
