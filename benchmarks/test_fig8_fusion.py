"""Figure 8 quantified: order-coupled vs order-decoupled fusion.

The paper's mechanism: NDEs break order-coupled fusion, so workloads with
substantial device interaction (OS boot, drivers, I/O) suffer a low
fusion ratio; Squash decouples transmission from checking order and keeps
fusing.  This bench sweeps the NDE rate and measures both schemes.
"""

import pytest
from conftest import write_result

from repro.comm.fusion import OrderCoupledFuser, SquashFuser
from repro.workloads import StreamProfile, SyntheticStream

CYCLES = 2500


def _fusion_ratio(fuser_cls, nde_rate: float, seed: int = 17) -> float:
    profile = StreamProfile(
        name=f"nde_{nde_rate}", mmio_rate=nde_rate / 2,
        interrupt_rate=nde_rate / 2, exception_rate=0.001)
    stream = SyntheticStream(profile, seed=seed)
    fuser = fuser_cls(window=64, differencing=False)
    for cycle in stream.cycles(CYCLES):
        fuser.on_cycle(cycle)
    fuser.flush()
    return fuser.stats.fusion_ratio


@pytest.fixture(scope="module")
def sweep():
    rates = (0.0, 0.005, 0.02, 0.08, 0.2)
    rows = []
    for rate in rates:
        squash = _fusion_ratio(SquashFuser, rate)
        coupled = _fusion_ratio(OrderCoupledFuser, rate)
        rows.append((rate, squash, coupled))
    return rows


def test_fig8(sweep, benchmark):
    def regenerate() -> str:
        lines = ["Figure 8 (quantified): fusion ratio vs NDE rate",
                 f"{'NDE/instr':>10s} {'Squash':>8s} {'coupled':>8s} "
                 f"{'advantage':>10s}"]
        for rate, squash, coupled in sweep:
            lines.append(f"{rate:10.3f} {squash:8.2f} {coupled:8.2f} "
                         f"{squash/coupled:9.2f}x")
        return "\n".join(lines)

    text = benchmark(regenerate)
    write_result("fig8_fusion", text)

    for rate, squash, coupled in sweep:
        assert squash >= coupled * 0.99, rate
    # The decoupling advantage grows with the NDE rate (the paper's
    # OS-boot / driver / IO-intensive argument).
    advantages = [squash / coupled for _rate, squash, coupled in sweep]
    assert advantages[-1] > advantages[0] * 1.3
    assert advantages[-1] > 1.5


def test_coupled_breaks_scale_with_nde_rate(benchmark):
    def count_breaks():
        out = []
        for rate in (0.005, 0.05):
            profile = StreamProfile(name="x", mmio_rate=rate,
                                    interrupt_rate=rate / 4)
            stream = SyntheticStream(profile, seed=3)
            fuser = OrderCoupledFuser(window=64, differencing=False)
            for cycle in stream.cycles(CYCLES):
                fuser.on_cycle(cycle)
            fuser.flush()
            out.append(fuser.stats.fusion_breaks)
        return out

    low, high = benchmark(count_breaks)
    assert high > 3 * low
