"""Table 1: the 32 verification event types by category."""

from conftest import write_result

from repro.events import EventCategory, all_event_classes


def regenerate() -> str:
    lines = ["Table 1: Verification events",
             f"{'Category':20s} {'Types':>5s}  Representative examples"]
    by_category = {}
    for cls in all_event_classes():
        by_category.setdefault(cls.DESCRIPTOR.category, []).append(cls)
    for category in EventCategory:
        classes = by_category[category]
        examples = ", ".join(c.__name__ for c in classes[:3])
        lines.append(f"{category.value:20s} {len(classes):5d}  {examples}")
    lines.append(f"{'total':20s} {sum(len(v) for v in by_category.values()):5d}")
    return "\n".join(lines)


def test_table1(benchmark):
    text = benchmark(regenerate)
    write_result("table1_events", text)
    assert len(all_event_classes()) == 32
    assert "control_flow" in text
