"""Micro-benchmarks of the communication kernels themselves.

These time the *Python implementation* of the hot paths (packing,
unpacking, differencing, mux-tree compaction, checker stepping) with
pytest-benchmark — useful for tracking regressions in the library itself,
independent of the modeled-time experiments.
"""

import pytest

import repro.events as EV
from repro.comm.fusion import Completer, Differencer, SquashFuser
from repro.comm.packing import (
    BatchPacker,
    BatchUnpacker,
    WireItem,
    mux_tree_pack,
)
from repro.workloads import LINUX_BOOT, SyntheticStream


@pytest.fixture(scope="module")
def cycle_events():
    stream = SyntheticStream(LINUX_BOOT, seed=5)
    cycles = [cycle for cycle in stream.cycles(200) if cycle]
    return cycles


def test_bench_batch_pack(cycle_events, benchmark):
    items = [[WireItem.from_event(e) for e in cycle]
             for cycle in cycle_events]

    def pack():
        packer = BatchPacker()
        for cycle in items:
            packer.pack_cycle(cycle)
        return packer.flush()

    transfers = benchmark(pack)
    assert transfers or True


def test_bench_batch_unpack(cycle_events, benchmark):
    packer = BatchPacker()
    transfers = []
    for cycle in cycle_events:
        transfers.extend(packer.pack_cycle(
            [WireItem.from_event(e) for e in cycle]))
    transfers.extend(packer.flush())
    unpacker = BatchUnpacker()

    def unpack():
        total = 0
        for transfer in transfers:
            total += len(unpacker.unpack(transfer))
        return total

    total = benchmark(unpack)
    assert total == sum(len(c) for c in cycle_events)


def test_bench_squash_fusion(cycle_events, benchmark):
    def fuse():
        fuser = SquashFuser(window=32, differencing=False)
        out = 0
        for cycle in cycle_events:
            out += len(fuser.on_cycle(cycle))
        out += len(fuser.flush())
        return out

    assert benchmark(fuse) > 0


def test_bench_differencing(benchmark):
    snapshots = [EV.CsrState(order_tag=i,
                             csrs=tuple((j + (i % 3 == 0)) for j in range(64)))
                 for i in range(100)]

    def diff_chain():
        differ = Differencer()
        completer = Completer()
        for snapshot in snapshots:
            completer.complete(differ.encode(snapshot))
        return differ.diff_sent

    assert benchmark(diff_chain) > 0


def test_bench_mux_tree(benchmark):
    slots = [WireItem.from_event(EV.IntWriteback(order_tag=i))
             if i % 3 else None for i in range(64)]
    result = benchmark(mux_tree_pack, slots)
    assert len(result) == sum(1 for s in slots if s is not None)


def test_bench_event_encode_decode(benchmark):
    events = [EV.InstrCommit(order_tag=i, pc=i * 4, instr=0x13, wdata=i,
                             rd=1, flags=1, fused_count=1) for i in range(64)]

    def codec():
        blobs = [event.encode() for event in events]
        return [EV.VerificationEvent.decode(blob) for blob in blobs]

    decoded = benchmark(codec)
    assert decoded == events


def test_bench_hart_steps(benchmark):
    from repro.isa import ArchState, Bus, Hart, assemble
    from repro.isa.const import DRAM_BASE

    image = assemble("""
_start:
    li t0, 1000
loop:
    addi t1, t1, 3
    mul t2, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    j _start
""")

    def run_steps():
        state = ArchState()
        bus = Bus()
        bus.memory.store_bytes(DRAM_BASE, image)
        hart = Hart(state, bus)
        for _ in range(2000):
            hart.step()
        return hart.instret

    assert benchmark(run_steps) == 2000
