"""Figure 2: overhead breakdown across DUTs and platforms (baseline)."""

import pytest
from conftest import write_result

from repro.analysis import breakdown_row, render_table
from repro.comm import FPGA_VU19P, PALLADIUM
from repro.core import CONFIG_Z
from repro.dut import NUTSHELL, XIANGSHAN_DEFAULT


@pytest.fixture(scope="module")
def rows(matrix):
    cases = [
        ("NutShell / Palladium", NUTSHELL, PALLADIUM),
        ("XiangShan / Palladium", XIANGSHAN_DEFAULT, PALLADIUM),
        ("XiangShan / FPGA", XIANGSHAN_DEFAULT, FPGA_VU19P),
    ]
    out = []
    for label, dut, platform in cases:
        result = matrix.run(dut, CONFIG_Z)
        out.append(breakdown_row(label, result.stats, platform, dut))
    return out


def test_fig2(rows, benchmark):
    text = benchmark(lambda: "Figure 2: Overhead breakdown (baseline)\n"
                     + render_table(rows))
    write_result("fig2_breakdown", text)
    by_label = {row.label: row for row in rows}

    # Paper observations:
    # (1) communication dominates the baseline everywhere (>90%).
    for row in rows:
        assert 1 - row.fractions["dut"] > 0.90, row.label
    # (2) XiangShan incurs more data-transmission + software-processing
    #     overhead than NutShell on the same Palladium (bigger events,
    #     more complex checking) — compared in absolute time per cycle.
    nutshell = by_label["NutShell / Palladium"]
    xiangshan = by_label["XiangShan / Palladium"]

    def trans_sw_us_per_cycle(row):
        cycle_us = 1000.0 / row.speed_khz
        return (row.fractions["transmission"]
                + row.fractions["software"]) * cycle_us

    assert trans_sw_us_per_cycle(xiangshan) > trans_sw_us_per_cycle(nutshell)
    # (3) FPGA: higher startup share, lower transmission share (of comm).
    fpga = by_label["XiangShan / FPGA"]
    fpga_comm = 1 - fpga.fractions["dut"]
    pldm_comm = 1 - xiangshan.fractions["dut"]
    assert fpga.fractions["startup"] / fpga_comm > \
        xiangshan.fractions["startup"] / pldm_comm
    assert fpga.fractions["transmission"] / fpga_comm < \
        xiangshan.fractions["transmission"] / pldm_comm
