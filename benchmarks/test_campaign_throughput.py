"""Campaign-executor throughput: jobs/sec scaling across worker counts.

ISAAC-style campaign parallelism only pays off if fan-out actually
scales, so this bench runs the acceptance campaign of the parallel
executor — a 32-seed fuzz sweep — at workers in {1, 2, 4}, records
jobs/sec and wall time per point, and re-checks the determinism
guarantee (every worker count must render a byte-identical aggregated
report).  The recorded table gives future PRs a regression anchor for
campaign scaling.

The wall-clock speedup assertion is gated on the host actually having
multiple cores: on a single-core CI box the pool still runs (and must
still be deterministic), but cannot be faster than serial.
"""

import os

import pytest
from conftest import write_result

from repro.workloads import fuzz_campaign

SEEDS = range(32)
LENGTH = 40
WORKER_POINTS = (1, 2, 4)


@pytest.fixture(scope="module")
def sweep():
    points = []
    for workers in WORKER_POINTS:
        campaign = fuzz_campaign(SEEDS, length=LENGTH, workers=workers)
        assert campaign.passed, campaign.render()
        points.append(campaign)
    return points


@pytest.mark.campaign
def test_campaign_throughput(sweep, benchmark):
    def report() -> str:
        lines = [
            "Campaign throughput: 32-seed fuzz campaign "
            f"(length {LENGTH}, host cores: {os.cpu_count()})",
            f"{'workers':>8s} {'wall s':>8s} {'jobs/s':>8s} "
            f"{'utilization':>12s} {'speedup':>8s}",
        ]
        serial_wall = sweep[0].stats.wall_time_s
        for campaign in sweep:
            stats = campaign.stats
            lines.append(
                f"{stats.workers:8d} {stats.wall_time_s:8.2f} "
                f"{stats.jobs_per_sec:8.2f} "
                f"{stats.worker_utilization:12.0%} "
                f"{serial_wall / max(stats.wall_time_s, 1e-9):7.2f}x")
        return "\n".join(lines)

    text = benchmark(report)
    write_result("campaign_throughput", text)
    for campaign in sweep:
        assert campaign.stats.jobs_total == 32
        assert campaign.stats.jobs_per_sec > 0


@pytest.mark.campaign
def test_campaign_reports_byte_identical(sweep):
    """The acceptance criterion: workers=4 report == workers=1 report."""
    serial = sweep[0].render()
    for campaign in sweep[1:]:
        assert campaign.render() == serial


@pytest.mark.campaign
@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs >= 4 physical cores")
def test_campaign_speedup_on_multicore(sweep):
    """On a 4-core machine the 4-worker campaign must halve wall time."""
    serial_wall = sweep[0].stats.wall_time_s
    four_wall = sweep[-1].stats.wall_time_s
    assert four_wall < 0.5 * serial_wall, (serial_wall, four_wall)
