"""Section 6.2's workload matrix: realistic benchmarks across the stack.

The paper evaluates on Linux boot, KVM, XVISOR, RVV_TEST and SPEC CPU
2006.  This bench runs our stand-ins for each through the baseline and
fully-optimised configurations and reports the modeled Palladium speeds
— demonstrating that the speedup generalises across workload character
(I/O-heavy, hypervisor, vector, compute).
"""

import pytest
from conftest import write_result

from repro.comm import PALLADIUM
from repro.core import CONFIG_BNSD, CONFIG_Z, run_cosim
from repro.dut import XIANGSHAN_DEFAULT
from repro.workloads import build

WORKLOADS = (
    ("linux_boot_like", {}),
    ("mini_os", {}),
    ("kvm_like", {}),
    ("xvisor_like", {}),
    ("rvv_test", {}),
    ("rvc_mix", {}),
    ("spec_like", {"kernel": "crc"}),
    ("spec_like", {"kernel": "matmul", "iterations": 20}),
    ("spec_like", {"kernel": "pointer_chase", "iterations": 20}),
)


@pytest.fixture(scope="module")
def rows():
    out = []
    for name, kwargs in WORKLOADS:
        workload = build(name, **kwargs)
        base = run_cosim(XIANGSHAN_DEFAULT, CONFIG_Z, workload.image,
                         max_cycles=workload.max_cycles)
        opt = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                        max_cycles=workload.max_cycles)
        assert base.passed and opt.passed, (workload.name, base.mismatch,
                                            opt.mismatch)
        gates = XIANGSHAN_DEFAULT.gates_millions
        base_khz = base.breakdown(PALLADIUM, gates, False).speed_khz
        opt_khz = opt.breakdown(PALLADIUM, gates, True).speed_khz
        out.append((workload.name, opt.instructions,
                    opt.stats.nde_sent_ahead, base_khz, opt_khz))
    return out


def test_workload_matrix(rows, benchmark):
    def regenerate() -> str:
        lines = ["Workload matrix: baseline vs DiffTest-H on Palladium",
                 f"{'workload':20s} {'instr':>7s} {'NDEs':>6s} "
                 f"{'baseline':>9s} {'DiffTest-H':>11s} {'speedup':>8s}"]
        for name, instr, ndes, base_khz, opt_khz in rows:
            lines.append(f"{name:20s} {instr:7d} {ndes:6d} "
                         f"{base_khz:9.1f} {opt_khz:11.1f} "
                         f"{opt_khz/base_khz:7.1f}x")
        return "\n".join(lines)

    text = benchmark(regenerate)
    write_result("workload_matrix", text)

    for name, _instr, _ndes, base_khz, opt_khz in rows:
        assert opt_khz > 10 * base_khz, name  # big speedup on every class


def test_nde_heavy_workloads_still_fuse(rows, benchmark):
    """Even the hypervisor/interrupt-heavy workloads keep Squash effective
    (order decoupling: NDEs do not break fusion)."""
    ndes = benchmark(lambda: {name: nde for name, _i, nde, _b, _o in rows})
    assert ndes["kvm_like"] > 0
    assert ndes["linux_boot_like"] > 0
    assert ndes["mini_os"] > 0
