"""Figure 14: bug-detection time, Verilator vs. DiffTest-H on Palladium.

For each seeded bug we measure the cycles to detection with the real
checker, then model the wall-clock time on (a) 16-thread Verilator
co-simulation and (b) DiffTest-H on Palladium.  The paper's headline:
bugs needing up to 2 months on Verilator are found within 11 hours.
"""

import pytest
from conftest import write_result

from repro.comm import PALLADIUM, VERILATOR_16T
from repro.core import CONFIG_BNSD, CoSimulation
from repro.dut import XIANGSHAN_DEFAULT, fault_by_name
from repro.isa import assemble

LIVE_LOOP = """
_start:
    li sp, 0x80100000
    li t0, {iterations}
    li t1, 0
loop:
    add t1, t1, t0
    sd t1, -8(sp)
    ld t2, -8(sp)
    add t1, t1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""

#: (fault, loop iterations, trigger instruction) — deeper triggers model
#: bugs that manifest only after more cycles.
BUGS = (
    ("control_flow_wdata", 400, 300),
    ("store_queue_mismatch", 800, 2000),
    ("misaligned_wakeup", 1600, 6000),
    ("sbuffer_lost_bytes", 3200, 12000),
)


@pytest.fixture(scope="module")
def detections():
    rows = []
    for fault, iterations, trigger in BUGS:
        image = assemble(LIVE_LOOP.format(iterations=iterations))
        cosim = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD, image)
        fault_by_name(fault).install(cosim.dut.cores[0], trigger)
        result = cosim.run(max_cycles=300_000)
        assert result.mismatch is not None, fault
        fast = result.breakdown(PALLADIUM, XIANGSHAN_DEFAULT.gates_millions,
                                True)
        slow = result.breakdown(VERILATOR_16T,
                                XIANGSHAN_DEFAULT.gates_millions, False)
        rows.append((fault, result.cycles, slow.total_us, fast.total_us))
    return rows


def test_fig14(detections, benchmark):
    def regenerate() -> str:
        lines = ["Figure 14: bug detection time (modeled)",
                 f"{'bug':24s} {'cycles':>9s} {'Verilator':>12s} "
                 f"{'DiffTest-H':>12s} {'speedup':>8s}"]
        for fault, cycles, slow_us, fast_us in detections:
            lines.append(f"{fault:24s} {cycles:9d} {slow_us/1e6:10.2f} s "
                         f"{fast_us/1e6:10.4f} s {slow_us/fast_us:8.0f}x")
        return "\n".join(lines)

    text = benchmark(regenerate)
    write_result("fig14_bug_time", text)

    for fault, _cycles, slow_us, fast_us in detections:
        # DiffTest-H detects the same bug at the same cycle count but
        # dramatically faster in wall-clock (paper: months -> hours).
        assert fast_us < slow_us / 30, fault


def test_deeper_bugs_take_longer(detections, benchmark):
    cycles = benchmark(lambda: [row[1] for row in detections])
    assert cycles == sorted(cycles)
