"""Figure 10 quantified: Replay vs. snapshot-based debugging.

Both flows localise the same seeded bugs; this bench measures what each
pays: Replay reprocesses buffered verification events with a
compensation-log revert (no DUT re-execution), while the snapshot flow
restores a full system image and re-executes DUT cycles.
"""

import pytest
from conftest import write_result

from repro.core import CONFIG_BNSD, CoSimulation, SnapshotCoSimulation
from repro.dut import XIANGSHAN_DEFAULT, fault_by_name
from repro.isa import assemble

PROGRAM = """
_start:
    li sp, 0x80100000
    li t0, 1500
    li t1, 0
loop:
    add t1, t1, t0
    sd t1, -8(sp)
    ld t2, -8(sp)
    add t1, t1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""

BUGS = (("store_queue_mismatch", 4000), ("control_flow_wdata", 6000),
        ("sbuffer_lost_bytes", 8000))


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for fault, trigger in BUGS:
        replay = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                              assemble(PROGRAM))
        fault_by_name(fault).install(replay.dut.cores[0], trigger)
        replay_result = replay.run(max_cycles=200_000)
        assert replay_result.mismatch is not None, fault

        snap = SnapshotCoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                                    assemble(PROGRAM),
                                    snapshot_interval=1500)
        fault_by_name(fault).install(snap.dut.cores[0], trigger)
        snap_result = snap.run(max_cycles=200_000)
        assert snap_result.mismatch is not None, fault

        rows.append((fault,
                     replay_result.debug_report.replayed_events,
                     replay_result.debug_report.reverted_records,
                     snap.costs.snapshot_bytes_total,
                     snap.costs.rerun_cycles,
                     replay_result.debug_report.localized is not None,
                     snap_result.debug_report.localized is not None))
    return rows


def test_fig10(comparison, benchmark):
    def regenerate() -> str:
        lines = ["Figure 10 (quantified): Replay vs snapshot debugging",
                 f"{'bug':24s} {'replay evts':>11s} {'log recs':>9s} "
                 f"{'snap bytes':>11s} {'rerun cyc':>10s}"]
        for fault, events, records, snap_bytes, rerun, _r, _s in comparison:
            lines.append(f"{fault:24s} {events:11d} {records:9d} "
                         f"{snap_bytes:11d} {rerun:10d}")
        lines.append("replay re-executes 0 DUT cycles in every case")
        return "\n".join(lines)

    text = benchmark(regenerate)
    write_result("fig10_debug_comparison", text)

    for fault, events, records, snap_bytes, rerun, r_loc, s_loc in comparison:
        assert r_loc and s_loc, fault  # both flows localise the bug
        # Snapshots pay full-DUT re-execution; Replay re-executes nothing
        # (its cost is reprocessing a bounded window of buffered events).
        assert rerun > 0, fault
        assert events < rerun * 10, fault
        assert records > 0, fault
        assert snap_bytes > 0, fault
