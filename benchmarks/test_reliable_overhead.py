"""Reliability-layer overhead: the default path must stay free.

The resilient-transport PR adds framing (CRC32, sequence numbers) and a
retransmit buffer behind ``ReliabilityConfig(reliable=True)``.  The
contract is that ``reliable=False`` — the default — is *off the fast
path entirely*: the plain :class:`~repro.comm.channel.Channel` is
constructed and the wire format is byte-identical to the pre-PR format.

Two guards enforce that contract:

1. **Deterministic** — a default-config run adds zero framing bytes and
   zero extra channel invokes (asserted exactly, immune to host noise).
2. **Wall-clock** — cycles/sec of the default path must stay within a
   few percent of the fast-path number recorded in ``BENCH_hotloop.json``
   (skipped when the file is missing; the strict 2% floor applies in
   full mode only, set ``RELIABLE_BENCH_FULL=1``).

The reliable path itself is also measured and recorded — it *is* allowed
to cost (CRC32 per frame, retransmit bookkeeping), and the measured
overhead lands in ``benchmarks/results/reliable_overhead.txt`` plus
``BENCH_reliability.json`` so tuning.md can cite it.

Run with:
``PYTHONPATH=src python -m pytest benchmarks/test_reliable_overhead.py -q``
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest
from conftest import write_result

from repro.comm.framing import HEADER_SIZE
from repro.core import CONFIG_BNSD, CoSimulation, ReliabilityConfig
from repro.dut import XIANGSHAN_DEFAULT
from repro.workloads import build

pytestmark = pytest.mark.bench

FULL = os.environ.get("RELIABLE_BENCH_FULL", "") not in ("", "0")
REPEATS = 4 if FULL else 2
E2E_CYCLES = 500_000
ROOT = pathlib.Path(__file__).resolve().parent.parent
HOTLOOP_JSON = ROOT / "BENCH_hotloop.json"
BENCH_JSON = ROOT / "BENCH_reliability.json"

#: In quick mode the baseline in BENCH_hotloop.json was measured on an
#: unknown (possibly quieter) host, so the floor is loose; full mode
#: asserts the real "<2% overhead" contract.
BASELINE_FLOOR = 0.98 if FULL else 0.85

CONFIG_RELIABLE = CONFIG_BNSD.with_(
    name="EBINSD-R", reliability=ReliabilityConfig(reliable=True))

#: Snapshot recovery points force a packer flush at each quiescent
#: boundary, which perturbs batching; turn them off to isolate the pure
#: framing cost for the byte-accounting identity below.
CONFIG_RELIABLE_NOSNAP = CONFIG_BNSD.with_(
    name="EBINSD-Rn",
    reliability=ReliabilityConfig(reliable=True, snapshot_recovery=False))

_RESULTS: dict = {}


def _timed_run(config, image):
    cosim = CoSimulation(XIANGSHAN_DEFAULT, config, image)
    t0 = time.perf_counter()
    result = cosim.run(E2E_CYCLES)
    dt = time.perf_counter() - t0
    assert result.passed
    return result.cycles / dt, result


def _best_of(config, image, repeats=REPEATS):
    _timed_run(config, image)  # warm-up
    best_cps, result = 0.0, None
    for _ in range(repeats):
        cps, run = _timed_run(config, image)
        if cps > best_cps:
            best_cps, result = cps, run
    return best_cps, result


def _flush_results():
    if not _RESULTS:
        return
    _RESULTS["mode"] = "full" if FULL else "quick"
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True)
                          + "\n")
    lines = [f"reliability overhead ({_RESULTS['mode']} mode)"]
    default = _RESULTS.get("default_path")
    if default:
        lines.append(
            f"  reliable=False: {default['cycles_per_sec']:,.0f} cyc/s "
            f"({default['vs_hotloop_baseline']} of BENCH_hotloop fast path)")
    reliable = _RESULTS.get("reliable_path")
    if reliable:
        lines.append(
            f"  reliable=True:  {reliable['cycles_per_sec']:,.0f} cyc/s "
            f"= {reliable['overhead_pct']:.1f}% overhead, "
            f"+{reliable['framing_bytes_per_invoke']} B/invoke framing")
    write_result("reliable_overhead", "\n".join(lines))


@pytest.fixture(scope="module", autouse=True)
def _persist_results():
    yield
    _flush_results()


# ----------------------------------------------------------------------
# 1. Deterministic guard: the default wire format is untouched.
# ----------------------------------------------------------------------

def test_default_path_wire_format_unchanged():
    image = build("memory_churn", array_kb=32, passes=2).image
    plain = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD, image)
    reliable = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_RELIABLE_NOSNAP, image)
    # reliable=False constructs the plain Channel, not a subclass.
    assert type(plain.channel).__name__ == "Channel"
    assert type(reliable.channel).__name__ == "ReliableChannel"
    a = plain.run(E2E_CYCLES)
    b = reliable.run(E2E_CYCLES)
    ca, cb = a.stats.counters, b.stats.counters
    # Zero framing bytes on the default path; the reliable path pays
    # exactly one header per invoke and nothing else.
    assert cb.invokes == ca.invokes
    assert cb.bytes_sent == ca.bytes_sent + ca.invokes * HEADER_SIZE
    assert ca.link_crc_errors == ca.link_retransmits == 0
    assert (a.cycles, a.instructions, a.uart_output) == \
        (b.cycles, b.instructions, b.uart_output)
    # With recovery points on, each quiescent boundary flushes the
    # packer; the run outcome is unchanged, only batching granularity.
    c = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_RELIABLE, image).run(
        E2E_CYCLES)
    assert (c.cycles, c.instructions, c.uart_output) == \
        (a.cycles, a.instructions, a.uart_output)
    assert c.stats.counters.invokes >= ca.invokes


# ----------------------------------------------------------------------
# 2. Wall-clock guards
# ----------------------------------------------------------------------

def test_default_path_holds_hotloop_throughput():
    if not HOTLOOP_JSON.exists():
        pytest.skip("BENCH_hotloop.json not present; run "
                    "test_hotloop_throughput.py first")
    hotloop = json.loads(HOTLOOP_JSON.read_text())
    baseline = (hotloop.get("end_to_end", {})
                .get("batch_squash_vs_baseline_config", {})
                .get("bnsd_cycles_per_sec"))
    if not baseline:
        pytest.skip("no bnsd_cycles_per_sec baseline in BENCH_hotloop.json")
    image = build("memory_churn", array_kb=32, passes=2).image
    cps, _ = _best_of(CONFIG_BNSD, image)
    ratio = cps / baseline
    _RESULTS["default_path"] = {
        "cycles_per_sec": round(cps),
        "hotloop_baseline": baseline,
        "vs_hotloop_baseline": f"{ratio:.3f}x",
        "floor": BASELINE_FLOOR,
    }
    assert ratio >= BASELINE_FLOOR, (
        f"reliable=False path measured {cps:,.0f} cyc/s, below "
        f"{BASELINE_FLOOR:.0%} of the {baseline:,} cyc/s fast-path "
        f"baseline — the reliability layer leaked onto the default path")


def test_reliable_path_overhead_is_bounded():
    """reliable=True may cost, but CRC32+bookkeeping on an in-process
    queue must stay modest; both sides measured back-to-back here."""
    image = build("memory_churn", array_kb=32, passes=2).image
    plain_cps, plain = _best_of(CONFIG_BNSD, image)
    reliable_cps, reliable = _best_of(CONFIG_RELIABLE, image)
    overhead = (plain_cps - reliable_cps) / plain_cps * 100.0
    invokes = reliable.stats.counters.invokes
    _RESULTS["reliable_path"] = {
        "cycles_per_sec": round(reliable_cps),
        "plain_cycles_per_sec": round(plain_cps),
        "overhead_pct": round(overhead, 2),
        "framing_bytes_per_invoke": HEADER_SIZE,
        "invokes": invokes,
    }
    # Generous bound: the reliable path does strictly more work, but a
    # CRC over ~100-byte frames must not halve throughput.
    assert reliable_cps >= plain_cps * 0.5, (plain_cps, reliable_cps)
