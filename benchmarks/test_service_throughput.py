"""Campaign-service throughput: queue ingest rate and cache-hit latency.

Verification-as-a-service only pays off if the control plane stays out
of the way: accepting a submission must cost milliseconds (it is one
durable SQLite insert plus a fingerprint hash), and a cache hit must
return a finished campaign's report orders of magnitude faster than
re-running it.  This bench records both into ``BENCH_service.json``
(repo root) plus ``benchmarks/results/service_throughput.txt``:

* **store ingest** — distinct submissions/sec into the WAL-mode queue
  (fingerprint + INSERT per call), and dedup lookups/sec for repeat
  submissions that coalesce onto existing rows;
* **cache-hit latency** — median wall time of submit→results for a
  campaign that already finished, versus the wall time of actually
  running it the first time.
"""

import asyncio
import json
import pathlib
import statistics
import time

import pytest
from conftest import write_result

from repro.service import (
    CampaignService,
    InProcessClient,
    ServiceStore,
    build_submission,
)

pytestmark = [pytest.mark.bench, pytest.mark.service]

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_service.json"

INGEST_COUNT = 200
CACHE_HIT_SAMPLES = 30
FUZZ_PARAMS = {"seeds": 2, "length": 30}


@pytest.mark.campaign
def test_service_throughput(tmp_path):
    results = {}

    # -- store ingest: distinct submissions, then dedup lookups --------
    submissions = [
        build_submission("fuzz", {"seeds": 1, "start": i, "length": 20})
        for i in range(INGEST_COUNT)
    ]
    with ServiceStore(str(tmp_path / "ingest.db")) as store:
        start = time.perf_counter()
        ids = [store.submit(sub)[0] for sub in submissions]
        ingest_s = time.perf_counter() - start
        assert len(set(ids)) == INGEST_COUNT

        start = time.perf_counter()
        for sub in submissions:
            repeat_id, _ = store.submit(sub)
        dedup_s = time.perf_counter() - start
    results["ingest_submissions_per_sec"] = INGEST_COUNT / ingest_s
    results["dedup_lookups_per_sec"] = INGEST_COUNT / dedup_s

    # -- cache-hit latency vs first-run wall time ----------------------
    async def scenario():
        with ServiceStore(str(tmp_path / "cache.db")) as store:
            service = CampaignService(store, workers=1, rate=1e9,
                                      burst=1e9)
            client = InProcessClient(service)
            await service.start()
            start = time.perf_counter()
            first = await client.submit("fuzz", FUZZ_PARAMS)
            assert await client.wait(first["campaign"]) == "done"
            await client.results(first["campaign"])
            first_run_s = time.perf_counter() - start

            latencies = []
            for _ in range(CACHE_HIT_SAMPLES):
                start = time.perf_counter()
                reply = await client.submit("fuzz", FUZZ_PARAMS)
                assert reply["cached"] is True
                await client.results(reply["campaign"])
                latencies.append(time.perf_counter() - start)
            await service.stop()
            return first_run_s, latencies

    first_run_s, latencies = asyncio.run(scenario())
    hit_ms = statistics.median(latencies) * 1e3
    results["first_run_s"] = first_run_s
    results["cache_hit_median_ms"] = hit_ms
    results["cache_hit_speedup"] = first_run_s / (hit_ms / 1e3)

    BENCH_JSON.write_text(json.dumps(results, indent=2, sort_keys=True)
                          + "\n")
    text = "\n".join([
        "Campaign service throughput",
        f"  queue ingest   : "
        f"{results['ingest_submissions_per_sec']:10,.0f} "
        f"submissions/s ({INGEST_COUNT} distinct)",
        f"  dedup lookups  : "
        f"{results['dedup_lookups_per_sec']:10,.0f} lookups/s",
        f"  first run      : {first_run_s * 1e3:10,.1f} ms "
        f"({FUZZ_PARAMS['seeds']}-seed fuzz campaign)",
        f"  cache hit      : {hit_ms:10,.2f} ms median "
        f"(submit + results, {CACHE_HIT_SAMPLES} samples)",
        f"  hit speedup    : {results['cache_hit_speedup']:10,.1f}x",
    ])
    write_result("service_throughput", text)

    # sanity floors, far below any real machine's numbers
    assert results["ingest_submissions_per_sec"] > 50
    assert hit_ms < first_run_s * 1e3
