"""Fault-free overhead of the supervised worker pool.

The supervisor (pool rebuild, re-queue, bounded in-flight window,
poison quarantine) only earns its keep if the fault-free path — which is
every healthy campaign — pays essentially nothing for it.  This bench
compares the supervised executor against a minimal submit-all baseline
(the pre-supervision ``_run_pool`` shape: one ProcessPoolExecutor, every
job submitted up front, results folded in submission order) over the
same tiny jobs, so the measured difference is pure supervisor
bookkeeping, not simulation time.

Records ``supervision_speedup`` (baseline time / supervised time, ~1.0)
into ``BENCH_supervision.json`` — benchguard then gates any future
change that slows the supervised path by more than its 10%% regression
budget — plus ``benchmarks/results/supervision_overhead.txt``.  The
in-test floor asserts the ISSUE acceptance target (<=3%% overhead, with
a noise margin for shared CI machines).
"""

import json
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor

import pytest
from conftest import write_result

from repro.core.summary import RunSummary
from repro.parallel import CampaignExecutor, JobSpec, register_runner
from repro.parallel.executor import execute_job

pytestmark = [pytest.mark.bench, pytest.mark.campaign]

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_supervision.json"

WORKERS = 4
JOBS = 64
ROUNDS = 5


@register_runner("bench-noop")
def _run_noop(params):
    # A touch of real work so a job is not pure pickling overhead.
    total = 0
    for i in range(20_000):
        total += i * i
    return RunSummary(passed=True, exit_code=0, cycles=total % 97,
                      instructions=params["index"])


def _specs():
    return [JobSpec(kind="bench-noop", label=f"job {i}",
                    params={"index": i}) for i in range(JOBS)]


def _legacy_submit_all(specs):
    """The pre-supervision pool shape: submit everything, fold in
    submission order, no failure handling at all."""
    jobs = []
    with ProcessPoolExecutor(max_workers=WORKERS) as pool:
        futures = [pool.submit(execute_job, spec, index, None, 0)
                   for index, spec in enumerate(specs)]
        for future in futures:
            jobs.append(future.result())
    return jobs


def test_supervision_overhead():
    legacy_times, supervised_times = [], []
    for _ in range(ROUNDS):
        specs = _specs()
        start = time.perf_counter()
        legacy_jobs = _legacy_submit_all(specs)
        legacy_times.append(time.perf_counter() - start)

        executor = CampaignExecutor(workers=WORKERS)
        start = time.perf_counter()
        campaign = executor.run(_specs())
        supervised_times.append(time.perf_counter() - start)

        # both paths produce the same folded results
        assert [job.summary for job in campaign.jobs] \
            == [job.summary for job in legacy_jobs]
        assert campaign.stats.pool_restarts == 0
        assert campaign.stats.backoff_s == 0.0

    best_legacy = min(legacy_times)
    best_supervised = min(supervised_times)
    speedup = best_legacy / best_supervised
    results = {
        "legacy_best_s": best_legacy,
        "supervised_best_s": best_supervised,
        "supervision_speedup": speedup,
    }
    BENCH_JSON.write_text(json.dumps(results, indent=2, sort_keys=True)
                          + "\n")
    text = "\n".join([
        "Supervised-pool fault-free overhead",
        f"  jobs           : {JOBS} x bench-noop on {WORKERS} workers "
        f"(best of {ROUNDS} rounds)",
        f"  submit-all     : {best_legacy * 1e3:8.1f} ms",
        f"  supervised     : {best_supervised * 1e3:8.1f} ms",
        f"  ratio          : {speedup:8.3f}x "
        f"(1.0 = free; target >= 0.97)",
    ])
    write_result("supervision_overhead", text)

    # The acceptance target is <=3% overhead; allow measurement noise
    # on shared machines, but fail loudly on anything structural.
    assert speedup >= 0.90, (
        f"supervised pool is {(1 / speedup - 1) * 100:.1f}% slower "
        f"than plain submit-all on the fault-free path")
