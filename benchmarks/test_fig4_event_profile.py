"""Figure 4: event size vs. invocation frequency in the baseline stream."""

from conftest import write_result

from repro.core import CONFIG_Z
from repro.dut import XIANGSHAN_DEFAULT
from repro.events import all_event_classes


def test_fig4(matrix, benchmark):
    result = matrix.run(XIANGSHAN_DEFAULT, CONFIG_Z)

    def regenerate() -> str:
        rows = result.stats.profile.rows(result.cycles)
        lines = ["Figure 4: event size and invocations (XiangShan, baseline)",
                 f"{'id':>3s} {'event':22s} {'bytes':>6s} {'invoc/cycle':>12s}"]
        for event_id, (name, size, rate) in enumerate(rows):
            lines.append(f"{event_id:3d} {name:22s} {size:6d} {rate:12.5f}")
        return "\n".join(lines)

    text = benchmark(regenerate)
    write_result("fig4_event_profile", text)

    sizes = [cls.payload_size() for cls in all_event_classes()]
    assert max(sizes) / min(sizes) >= 150  # the 170x structural diversity
    rates = [rate for _name, _size, rate in
             result.stats.profile.rows(result.cycles)]
    active = [rate for rate in rates if rate > 0]
    # Highly variable transmission frequencies (orders of magnitude).
    assert max(active) / min(active) > 100
    # Many event types active in a full-system workload.
    assert len(active) >= 15
