"""Straight-to-wire capture throughput: the emit→encode→pack tier.

This benchmark quantifies the ``repro.comm.fastcapture`` tier and
records the numbers in ``BENCH_capture.json`` (repo root) plus
``benchmarks/results/capture_throughput.txt``:

1. **Capture microbenchmark** — events/sec through the capture pipeline
   alone: the legacy object path (event construction → ``SquashFuser``
   → ``Differencer`` → ``pack_cycle``) against the compiled emitter
   table writing straight into the packer, on an identical hot-loop
   event mix.  This is the interpretive overhead the tier compiles
   away — the per-event materialisation that dominates once PR 8's JIT
   removed the stepping cost — and where the ≥1.5x goal lives, exactly
   as ``BENCH_jit.json`` asserts its 2x on the stepping microbenchmark.
2. **End-to-end fast-capture on/off** — full co-simulation cycles/sec
   with ``fast_capture=True`` against ``fast_capture=False`` on the
   same commit, same machine, under the capture-eligible configuration
   (``CONFIG_BNSD`` + JIT, no replay window).  Both sides must produce
   identical counters (asserted): straight-to-wire capture is a pure
   speedup, never a semantic fork.
3. **Reference vs the committed JIT trajectory** — fresh fast-on
   cycles/sec against the jit-on figures committed in
   ``BENCH_jit.json`` (informational: cross-day comparisons are not
   gated, and those figures include the replay-window capture cost this
   configuration turns off).

The ``speedup`` leaves are gated by ``repro.toolkit.benchguard`` like
every other ``BENCH_*.json`` trajectory.

Quick mode (the default) uses short runs and few repeats so the suite
is CI-friendly; set ``CAPTURE_BENCH_FULL=1`` for the full measurement.

Run with:
``PYTHONPATH=src python -m pytest benchmarks/test_capture_throughput.py -q``
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import time

import pytest
from conftest import write_result

from repro.comm.fastcapture import FastCaptureEngine
from repro.comm.fusion.squash import SquashFuser
from repro.comm.packing import BatchPacker
from repro.core import CONFIG_BNSD, run_cosim
from repro.dut import XIANGSHAN_DEFAULT
from repro.events import (
    FLAG_RF_WEN,
    CsrState,
    FpCsrState,
    FpRegState,
    InstrCommit,
    IntRegState,
    IntWriteback,
)
from repro.workloads import build

pytestmark = pytest.mark.bench

FULL = os.environ.get("CAPTURE_BENCH_FULL", "") not in ("", "0")
REPEATS = 4 if FULL else 2
MICRO_CYCLES = 30_000 if FULL else 8_000
ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_capture.json"
JIT_JSON = ROOT / "BENCH_jit.json"

#: The capture-eligible benchmark configuration: batched, non-blocking,
#: squashed, diff-encoded, JIT on, and no replay window (replay capture
#: is a fallback reason — it buffers the event objects themselves).
CONFIG_FAST = CONFIG_BNSD.with_(jit=True, replay=False)
CONFIG_SLOW = CONFIG_FAST.with_(fast_capture=False)

#: Results accumulated by the tests and flushed once per session.
_RESULTS: dict = {}


# ----------------------------------------------------------------------
# Measurement helpers
# ----------------------------------------------------------------------

def _mix_stream(cycles):
    """(cls, tag, kwargs) bundles shaped like a hot-loop commit cycle:
    two writeback+commit pairs plus the per-cycle architectural state
    snapshots (the mix ``Monitor.on_step`` / ``end_of_cycle_state``
    produce on ``alu_hotloop``)."""
    mask = (1 << 64) - 1
    int_regs = [0] * 32
    csrs = [0] * 64
    csrs[0] = 0x1800
    fp_regs = tuple(range(32))
    bundles = []
    tag = 0
    for _ in range(cycles):
        bundle = []
        for _ in range(2):
            rd = 5 + tag % 20
            data = (tag * 0x9E3779B97F4A7C15) & mask
            int_regs[rd] = data
            bundle.append((IntWriteback, tag,
                           {"addr": rd, "data": data}))
            bundle.append((InstrCommit, tag,
                           {"pc": (0x8000_0000 + 4 * tag) & mask,
                            "instr": 0x00A3_0333, "wdata": data,
                            "rd": rd, "flags": FLAG_RF_WEN,
                            "fused_count": 1}))
            tag += 1
        csrs[1] = tag  # one changing CSR: the diff path stays non-empty
        bundle.append((IntRegState, tag - 1, {"regs": tuple(int_regs)}))
        bundle.append((CsrState, tag - 1, {"csrs": tuple(csrs)}))
        bundle.append((FpCsrState, tag - 1,
                       {"fcsr": 0, "frm": 0, "fflags": 0}))
        bundle.append((FpRegState, tag - 1, {"regs": fp_regs}))
        bundles.append(bundle)
    return bundles


class _MonitorShim:
    """The two attributes ``emitter_table`` reads off a monitor."""

    config = XIANGSHAN_DEFAULT
    core_id = 0


def _timed(run):
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    events = run()
    dt = time.perf_counter() - t0
    gc.enable()
    return events / dt


def _legacy_pipeline(bundles):
    """Object path: event construction → fuser → differencer → packer."""
    packer = BatchPacker(4096)
    fuser = SquashFuser(differencing=True)
    wire = []

    def run():
        events = 0
        for bundle in bundles:
            cycle = [cls(core_id=0, order_tag=tag, **kwargs)
                     for cls, tag, kwargs in bundle]
            events += len(cycle)
            wire.extend(packer.pack_cycle(fuser.on_cycle(cycle)))
        wire.extend(packer.pack_cycle(fuser.flush()))
        wire.extend(packer.flush())
        return events

    return _timed(run), wire, fuser


def _fast_pipeline(bundles):
    """Straight-to-wire path: compiled emitters → packer buffer."""
    packer = BatchPacker(4096)
    fuser = SquashFuser(differencing=True)
    engine = FastCaptureEngine(fuser, packer)
    table = engine.emitter_table(_MonitorShim())
    wire = []

    def run():
        events = 0
        for bundle in bundles:
            engine.begin_bundle()
            for cls, tag, kwargs in bundle:
                table[cls](tag, **kwargs)
            events += len(bundle)
            wire.extend(engine.end_bundle())
        wire.extend(engine.flush())
        wire.extend(packer.flush())
        return events

    return _timed(run), wire, fuser


def _fusion_key(fuser):
    stats = fuser.stats
    diff = fuser.differencer
    return (stats.events_in, stats.events_out, stats.commits_in,
            stats.fused_commits_out, stats.nde_sent_ahead,
            diff.full_sent, diff.diff_sent, diff.bytes_saved)


def _counters_key(result):
    c = result.stats.counters
    return (result.cycles, result.instructions, result.exit_code,
            result.mismatch is None, c.bytes_sent, c.invokes,
            c.sw_events_checked, c.sw_ref_steps, c.sw_dispatches,
            result.stats.events_transmitted, result.stats.meta_bytes,
            result.stats.events_captured)


def _timed_run(config, workload):
    t0 = time.perf_counter()
    result = run_cosim(XIANGSHAN_DEFAULT, config, workload.image,
                       max_cycles=workload.max_cycles)
    dt = time.perf_counter() - t0
    return result.cycles / dt, result


def _interleaved_e2e(workload):
    """Best-of interleaved fast-off/fast-on rounds (round 0 warms up)."""
    configs = {"off": CONFIG_SLOW, "on": CONFIG_FAST}
    best = {"off": 0.0, "on": 0.0}
    results = {}
    for round_index in range(REPEATS + 1):
        for label, config in configs.items():
            cps, result = _timed_run(config, workload)
            results[label] = result
            if round_index:
                best[label] = max(best[label], cps)
    return best, results


def _flush_results():
    if not _RESULTS:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text())
        except ValueError:
            existing = {}
    existing.update(_RESULTS)
    existing["mode"] = "full" if FULL else "quick"
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True)
                          + "\n")
    lines = [f"capture throughput ({existing['mode']} mode)"]
    micro = existing.get("capture_microbench")
    if micro:
        lines.append(
            f"  pipeline: {micro['fast_events_per_sec']:,.0f} events/s "
            f"straight-to-wire vs {micro['legacy_events_per_sec']:,.0f} "
            f"object path = {micro['capture_speedup']:.2f}x")
    for workload, row in sorted(existing.get("end_to_end", {}).items()):
        if not isinstance(row, dict):
            continue
        lines.append(
            f"  e2e {workload}: {row['fast_on_cycles_per_sec']:,.0f} cyc/s "
            f"on vs {row['fast_off_cycles_per_sec']:,.0f} off "
            f"= {row['speedup']:.2f}x")
    committed = existing.get("vs_committed_jit", {})
    for workload, row in sorted(committed.items()):
        if not isinstance(row, dict):
            continue
        lines.append(
            f"  vs committed BENCH_jit {workload} jit-on "
            f"({row['committed_jit_on_cycles_per_sec']:,.0f} cyc/s): "
            f"{row['ratio_vs_jit_on']:.2f}x")
    write_result("capture_throughput", "\n".join(lines))


@pytest.fixture(scope="module", autouse=True)
def _persist_results():
    yield
    _flush_results()


# ----------------------------------------------------------------------
# 1. Capture microbenchmark
# ----------------------------------------------------------------------

def test_capture_pipeline_speedup():
    bundles = _mix_stream(MICRO_CYCLES)
    best_legacy = best_fast = 0.0
    for _ in range(REPEATS + 1):
        legacy_eps, legacy_wire, legacy_fuser = _legacy_pipeline(bundles)
        fast_eps, fast_wire, fast_fuser = _fast_pipeline(bundles)
        best_legacy = max(best_legacy, legacy_eps)
        best_fast = max(best_fast, fast_eps)
    # Semantics guard: same bytes, same counters — the tier only
    # removes host-side materialisation, never wire content.
    assert [bytes(t.data) for t in legacy_wire] \
        == [bytes(t.data) for t in fast_wire]
    assert _fusion_key(legacy_fuser) == _fusion_key(fast_fuser)

    speedup = best_fast / best_legacy
    _RESULTS["capture_microbench"] = {
        "event_mix": "2x(IntWriteback+InstrCommit) + state snapshots",
        "cycles_measured": MICRO_CYCLES,
        "legacy_events_per_sec": round(best_legacy),
        "fast_events_per_sec": round(best_fast),
        "capture_speedup": round(speedup, 3),
    }
    # Measures ~2.5x on a quiet machine; the quick floor keeps CI
    # headroom for noisy neighbours on shared runners.
    assert speedup >= (1.5 if FULL else 1.4), (best_fast, best_legacy)


# ----------------------------------------------------------------------
# 2. End-to-end fast-capture on/off
# ----------------------------------------------------------------------

def test_end_to_end_capture_speedup():
    rows = {}
    for name, kwargs in (
        ("memory_churn", dict(array_kb=32, passes=2)),
        ("alu_hotloop", {}),
    ):
        workload = build(name, **kwargs)
        best, results = _interleaved_e2e(workload)
        # Semantics guard: straight-to-wire capture must be invisible in
        # every counter the run reports.
        assert _counters_key(results["on"]) == _counters_key(results["off"])
        assert results["on"].passed, results["on"].mismatch
        assert results["on"].stats.capture_fallbacks == ()
        rows[name] = {
            "fast_on_cycles_per_sec": round(best["on"]),
            "fast_off_cycles_per_sec": round(best["off"]),
            "speedup": round(best["on"] / best["off"], 3),
        }
    _RESULTS["end_to_end"] = rows
    # The stepping loops and the software-side checker still bound the
    # end-to-end figure, so the whole-run win is smaller than the
    # pipeline win; the tier must simply never lose.
    best = max(row["speedup"] for row in rows.values())
    _RESULTS["end_to_end"]["best_speedup"] = best
    assert best >= 1.05, rows


# ----------------------------------------------------------------------
# 3. Fresh fast-on numbers vs the committed JIT trajectory
# ----------------------------------------------------------------------

def test_vs_committed_jit():
    committed = json.loads(JIT_JSON.read_text())["end_to_end"]
    rows = {}
    for name, kwargs in (
        ("memory_churn", dict(array_kb=32, passes=2)),
        ("alu_hotloop", {}),
    ):
        workload = build(name, **kwargs)
        best = 0.0
        for _ in range(REPEATS + 1):
            cps, result = _timed_run(CONFIG_FAST, workload)
            assert result.passed
            best = max(best, cps)
        reference = committed[name]["jit_on_cycles_per_sec"]
        rows[name] = {
            "fast_on_cycles_per_sec": round(best),
            "committed_jit_on_cycles_per_sec": reference,
            "ratio_vs_jit_on": round(best / reference, 3),
        }
    _RESULTS["vs_committed_jit"] = rows
    # Informational only: the committed figures were measured on a
    # different machine state (and with the replay window on), so no
    # cross-day ratio is asserted here.  The gated claims are the
    # same-machine ones above.
