"""End-to-end transport properties of the acceleration pipeline.

For any event stream, the fuser -> packer -> channel -> unpacker ->
completer pipeline must deliver a stream that is *checking-equivalent* to
its input:

* every NDE and PASS_THROUGH event is delivered exactly (bit-identical);
* fused commit counts sum to the number of input commits;
* KEEP_LATEST types deliver the most recent snapshot of each window;
* ACCUMULATE types deliver the last write per destination register.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.events as EV
from repro.comm.channel import Channel
from repro.comm.fusion import Completer, SquashFuser
from repro.comm.packing import BatchPacker, BatchUnpacker
from repro.workloads import KVM_IO, LINUX_BOOT, RVV_TEST, SyntheticStream


def run_pipeline(cycles, window=16, differencing=True, frame_size=1024):
    """Push cycles through the full pipeline; returns delivered events."""
    fuser = SquashFuser(window=window, differencing=differencing)
    packer = BatchPacker(frame_size=frame_size)
    channel = Channel(nonblocking=True)
    unpacker = BatchUnpacker()
    completer = Completer()
    for cycle in cycles:
        channel.send_all(packer.pack_cycle(fuser.on_cycle(cycle)))
    channel.send_all(packer.pack_cycle(fuser.flush()))
    channel.send_all(packer.flush())
    delivered = []
    while True:
        transfer = channel.receive()
        if transfer is None:
            break
        for item in unpacker.unpack(transfer):
            delivered.append(completer.complete(item))
    return delivered


def _stream_cycles(profile, seed, n):
    return list(SyntheticStream(profile, seed=seed).cycles(n))


_profiles = st.sampled_from([LINUX_BOOT, KVM_IO, RVV_TEST])


@given(profile=_profiles, seed=st.integers(0, 1000),
       cycles=st.integers(5, 120), window=st.sampled_from([1, 4, 16, 64]),
       differencing=st.booleans(),
       frame=st.sampled_from([256, 1024, 4096]))
@settings(max_examples=40, deadline=None)
def test_pipeline_checking_equivalence(profile, seed, cycles, window,
                                       differencing, frame):
    stream = _stream_cycles(profile, seed, cycles)
    flat = [event for cycle in stream for event in cycle]
    delivered = run_pipeline(stream, window, differencing, frame)

    # 1. Commit conservation: fused counts sum to the input commit count.
    in_commits = [e for e in flat if isinstance(e, EV.InstrCommit)
                  and not e.flags & EV.FLAG_SKIP]
    out_commits = [e for e in delivered if isinstance(e, EV.InstrCommit)
                   and not e.flags & EV.FLAG_SKIP]
    assert sum(e.fused_count for e in out_commits) == len(in_commits)
    # The final PC of each fused commit is a real input commit's PC.
    in_pcs = {e.order_tag: e.pc for e in in_commits}
    for commit in out_commits:
        assert in_pcs[commit.order_tag] == commit.pc

    # 2. NDEs delivered exactly, in order.
    in_ndes = [e for e in flat if e.is_nde()]
    out_ndes = [e for e in delivered if e.is_nde()]
    assert out_ndes == in_ndes

    # 3. PASS_THROUGH deterministic events delivered exactly.
    def passthrough(events):
        return [e for e in events
                if e.DESCRIPTOR.fusion_rule is EV.FusionRule.PASS_THROUGH
                and not e.is_nde()]

    assert passthrough(delivered) == passthrough(flat)

    # 4. KEEP_LATEST: the last delivered snapshot of each type equals the
    #    last input snapshot of that type.
    for cls in (EV.IntRegState, EV.CsrState):
        ins = [e for e in flat if isinstance(e, cls)]
        outs = [e for e in delivered if isinstance(e, cls)]
        if ins:
            assert outs, cls
            assert outs[-1] == ins[-1]
            # And delivered snapshots form a subsequence of the input.
            iterator = iter(ins)
            assert all(any(snapshot == candidate for candidate in iterator)
                       for snapshot in outs)

    # 5. ACCUMULATE: last write per register matches.
    def last_writes(events):
        out = {}
        for event in events:
            if isinstance(event, EV.IntWriteback):
                out[event.addr] = event.data
        return out

    assert last_writes(delivered) == last_writes(flat)


@given(seed=st.integers(0, 500), window=st.sampled_from([1, 8, 64]))
@settings(max_examples=20, deadline=None)
def test_pipeline_never_reorders_within_type(seed, window):
    stream = _stream_cycles(LINUX_BOOT, seed, 60)
    delivered = run_pipeline(stream, window=window)
    by_type = {}
    for event in delivered:
        # ACCUMULATE events are emitted per destination register, so their
        # tags are legitimately unordered (the checker buffers by tag), and
        # NDE instances are deliberately sent *ahead* of fused events;
        # every other category must stay tag-ordered per type.
        if event.DESCRIPTOR.fusion_rule is EV.FusionRule.ACCUMULATE:
            continue
        if event.is_nde():
            continue
        if isinstance(event, EV.InstrCommit):
            # Fused commits interleave with sent-ahead skip commits; the
            # fused subsequence itself must stay ordered.
            pass
        by_type.setdefault(type(event), []).append(event.order_tag)
    for cls, tags in by_type.items():
        assert tags == sorted(tags), cls


@given(seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_differencing_transparent_to_delivery(seed):
    stream = _stream_cycles(LINUX_BOOT, seed, 60)
    with_diff = run_pipeline(stream, differencing=True)
    without = run_pipeline(stream, differencing=False)
    assert with_diff == without
