"""Tests for the packing schemes: DPI-C baseline, fixed-offset, Batch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.events as EV
from repro.comm.packing import (
    BatchPacker,
    BatchUnpacker,
    DpicPacker,
    DpicUnpacker,
    FixedLayout,
    FixedPacker,
    FixedUnpacker,
    WireItem,
    mux_tree_pack,
)
from repro.comm.packing.batch import (
    BLOCK_HEADER_SIZE,
    EVENT_HEADER_SIZE,
    FRAME_HEADER_SIZE,
)
from repro.events import all_event_classes


def items_for_cycle(tag0: int = 0, core: int = 0):
    """A representative mixed cycle: commits, writebacks, loads, snapshots."""
    events = []
    for i in range(3):
        tag = tag0 + i
        events.append(EV.IntWriteback(core_id=core, order_tag=tag,
                                      addr=i + 1, data=100 + i))
        events.append(EV.InstrCommit(core_id=core, order_tag=tag,
                                     pc=0x80000000 + 4 * i, instr=0x13,
                                     wdata=100 + i, rd=i + 1,
                                     flags=EV.FLAG_RF_WEN, fused_count=1))
        events.append(EV.LoadEvent(core_id=core, order_tag=tag,
                                   paddr=0x80200000 + 8 * i, data=7,
                                   op_type=8, fu_type=0, mmio=0))
    events.append(EV.IntRegState(core_id=core, order_tag=tag0 + 2,
                                 regs=tuple(range(32))))
    return [WireItem.from_event(event) for event in events]


def roundtrip(packer, unpacker, cycles):
    received = []
    for items in cycles:
        for transfer in packer.pack_cycle(items):
            received.extend(unpacker.unpack(transfer))
    for transfer in packer.flush():
        received.extend(unpacker.unpack(transfer))
    return received


class TestDpic:
    def test_one_transfer_per_event(self):
        packer = DpicPacker()
        items = items_for_cycle()
        transfers = packer.pack_cycle(items)
        assert len(transfers) == len(items)
        assert packer.stats.transfers == len(items)

    def test_roundtrip(self):
        items = items_for_cycle()
        received = roundtrip(DpicPacker(), DpicUnpacker(), [items])
        assert received == items

    def test_wire_size_includes_header(self):
        packer = DpicPacker()
        item = WireItem.from_event(EV.FpCsrState())
        (transfer,) = packer.pack_cycle([item])
        assert transfer.size == 7 + EV.FpCsrState.payload_size()


class TestFixed:
    @pytest.fixture()
    def layout(self):
        return FixedLayout(all_event_classes(), num_cores=1)

    def test_packet_size_is_static(self, layout):
        packer = FixedPacker(layout)
        small = packer.pack_cycle(items_for_cycle()[:2])
        assert small[0].size == layout.packet_size

    def test_bubbles_dominate_sparse_cycles(self, layout):
        packer = FixedPacker(layout)
        packer.pack_cycle(items_for_cycle())
        # The paper reports >60% bubbles for fixed-offset packing.
        assert packer.stats.utilization < 0.4

    def test_roundtrip_orders_by_tag(self, layout):
        items = items_for_cycle()
        received = roundtrip(FixedPacker(layout), FixedUnpacker(layout),
                             [items])
        assert sorted(i.order_tag for i in received) == \
            [i.order_tag for i in received]
        assert {(i.type_id, i.order_tag, i.payload) for i in received} == \
            {(i.type_id, i.order_tag, i.payload) for i in items}

    def test_overflow_splits_in_program_order(self, layout):
        # More commits than InstrCommit has hardware slots (8).
        items = []
        for tag in range(10):
            items.append(WireItem.from_event(EV.InstrCommit(
                order_tag=tag, pc=tag, fused_count=1)))
        packer = FixedPacker(layout)
        transfers = packer.pack_cycle(items)
        assert len(transfers) == 2
        unpacker = FixedUnpacker(layout)
        first = unpacker.unpack(transfers[0])
        second = unpacker.unpack(transfers[1])
        assert max(i.order_tag for i in first) < min(i.order_tag
                                                     for i in second)

    def test_unknown_type_rejected(self):
        layout = FixedLayout([EV.InstrCommit], num_cores=1)
        packer = FixedPacker(layout)
        with pytest.raises(ValueError, match="not in the fixed layout"):
            packer.pack_cycle([WireItem.from_event(EV.LoadEvent())])

    def test_dual_core_regions(self):
        layout = FixedLayout(all_event_classes(), num_cores=2)
        items = [WireItem.from_event(EV.InstrCommit(core_id=c, order_tag=c))
                 for c in (0, 1)]
        received = roundtrip(FixedPacker(layout), FixedUnpacker(layout),
                             [items])
        assert {i.core_id for i in received} == {0, 1}


class TestMuxTree:
    def test_compacts_valid_entries(self):
        a = WireItem.from_event(EV.InstrCommit(order_tag=1))
        b = WireItem.from_event(EV.InstrCommit(order_tag=2))
        assert mux_tree_pack([None, a, None, b, None]) == [a, b]

    def test_empty(self):
        assert mux_tree_pack([None, None]) == []

    @given(st.lists(st.one_of(st.none(), st.integers(0, 100)), max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_equivalent_to_filter(self, slots):
        items = [None if s is None else
                 WireItem.from_event(EV.IntWriteback(order_tag=s))
                 for s in slots]
        assert mux_tree_pack(items) == [i for i in items if i is not None]


class TestBatch:
    def test_tight_packing_no_bubbles(self):
        packer = BatchPacker()
        packer.pack_cycle(items_for_cycle())
        for transfer in packer.flush():
            assert transfer.bubbles == 0
        assert packer.stats.utilization == 1.0

    def test_roundtrip_exact(self):
        cycles = [items_for_cycle(0), items_for_cycle(4), items_for_cycle(8)]
        received = roundtrip(BatchPacker(), BatchUnpacker(), cycles)
        flat = [item for cycle in cycles for item in cycle]
        assert received == flat

    def test_multi_cycle_packing_reduces_transfers(self):
        packer = BatchPacker(frame_size=4096)
        total_transfers = 0
        for start in range(0, 40, 4):
            total_transfers += len(packer.pack_cycle(items_for_cycle(start)))
        total_transfers += len(packer.flush())
        dpic_transfers = 10 * len(items_for_cycle())
        assert total_transfers < dpic_transfers / 10

    def test_frames_respect_size_limit(self):
        packer = BatchPacker(frame_size=1024)
        transfers = []
        for start in range(0, 64, 4):
            transfers.extend(packer.pack_cycle(items_for_cycle(start)))
        transfers.extend(packer.flush())
        for transfer in transfers[:-1]:
            assert transfer.size <= 1024

    def test_oversized_event_gets_own_frame(self):
        packer = BatchPacker(frame_size=256)
        big = WireItem.from_event(EV.VecRegState())  # 1 KiB payload
        transfers = packer.pack_cycle([big]) + packer.flush()
        assert len(transfers) == 1
        received = BatchUnpacker().unpack(transfers[0])
        assert received == [big]

    def test_split_at_event_boundary(self):
        # Frame that holds ~1.5 IntRegState events: the block must split.
        item_size = EVENT_HEADER_SIZE + EV.IntRegState.payload_size()
        frame = FRAME_HEADER_SIZE + BLOCK_HEADER_SIZE + int(item_size * 1.5)
        packer = BatchPacker(frame_size=frame)
        items = [WireItem.from_event(EV.IntRegState(order_tag=i))
                 for i in range(3)]
        transfers = packer.pack_cycle(items) + packer.flush()
        assert len(transfers) >= 2
        received = []
        for transfer in transfers:
            received.extend(BatchUnpacker().unpack(transfer))
        assert received == items

    def test_meta_bytes_tracked(self):
        packer = BatchPacker()
        packer.pack_cycle(items_for_cycle())
        packer.flush()
        assert packer.stats.meta_bytes > 0
        assert packer.stats.meta_bytes < packer.stats.payload_bytes

    def test_parse_error_on_corrupt_frame(self):
        packer = BatchPacker()
        packer.pack_cycle(items_for_cycle())
        (transfer,) = packer.flush()
        from repro.comm.packing.base import Transfer

        corrupt = Transfer(transfer.data + b"\x00\x00\x00")
        with pytest.raises(ValueError, match="frame parse error"):
            BatchUnpacker().unpack(corrupt)

    def test_interleaved_cores_roundtrip(self):
        cycles = [items_for_cycle(0, core=0) + items_for_cycle(0, core=1)]
        received = roundtrip(BatchPacker(), BatchUnpacker(), cycles)
        assert received == cycles[0]


@given(st.lists(st.lists(st.tuples(st.integers(0, 31), st.integers(0, 1000)),
                         max_size=6), max_size=6))
@settings(max_examples=60, deadline=None)
def test_batch_roundtrip_property(cycle_specs):
    """Any mix of default-valued events round-trips through Batch."""
    classes = all_event_classes()
    cycles = []
    for spec in cycle_specs:
        cycles.append([
            WireItem.from_event(classes[type_index](order_tag=tag))
            for type_index, tag in spec
        ])
    packer = BatchPacker(frame_size=2048)
    unpacker = BatchUnpacker()
    received = roundtrip(packer, unpacker, cycles)
    assert received == [item for cycle in cycles for item in cycle]
