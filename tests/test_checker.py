"""Tests for the ISA checker: order restoration, comparison, mismatches."""

import pytest

import repro.events as EV
from repro.core.checker import Checker, CheckerProtocolError
from repro.core.framework import REF_MMIO_RANGES
from repro.dut import XIANGSHAN_DEFAULT, DutSystem
from repro.isa import assemble
from repro.ref import RefModel


def make_pair(source: str):
    image = assemble(source)
    system = DutSystem(XIANGSHAN_DEFAULT)
    system.load_image(image)
    ref = RefModel(mmio_ranges=REF_MMIO_RANGES)
    ref.load_image(image)
    return system, Checker(ref)


def drive(system, checker, max_cycles=40_000, transform=None):
    """Feed the raw DUT stream (in order) to the checker."""
    for _ in range(max_cycles):
        (bundle,) = system.cycle()
        events = bundle.events if transform is None else transform(
            bundle.events)
        for event in events:
            mismatch = checker.process(event)
            if mismatch is not None:
                return mismatch
        if system.finished():
            return None
    raise AssertionError("did not finish")


SIMPLE = """
_start:
    li sp, 0x80100000
    li t0, 20
loop:
    sd t0, 0(sp)
    ld t1, 0(sp)
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""


class TestRawStream:
    def test_clean_run_passes(self):
        system, checker = make_pair(SIMPLE)
        assert drive(system, checker) is None
        assert checker.finished == 0

    def test_ref_slot_tracks_dut_slots(self):
        system, checker = make_pair(SIMPLE)
        drive(system, checker)
        assert checker.ref_slot == system.cores[0].monitor.slot

    def test_counters_populated(self):
        system, checker = make_pair(SIMPLE)
        drive(system, checker)
        assert checker.counters.sw_ref_steps > 0
        assert checker.counters.sw_events_checked > 0
        assert checker.counters.sw_bytes_checked > 0


class TestMismatchDetection:
    def test_wrong_commit_wdata_detected(self):
        system, checker = make_pair(SIMPLE)

        state = {"armed": True}

        def corrupt(events):
            out = []
            for event in events:
                if (isinstance(event, EV.InstrCommit) and state["armed"]
                        and event.order_tag > 10
                        and event.flags & EV.FLAG_RF_WEN):
                    state["armed"] = False
                    event = EV.InstrCommit(
                        core_id=event.core_id, order_tag=event.order_tag,
                        pc=event.pc, instr=event.instr,
                        wdata=event.wdata ^ 1, rd=event.rd,
                        flags=event.flags, fused_count=event.fused_count)
                out.append(event)
            return out

        mismatch = drive(system, checker, transform=corrupt)
        assert mismatch is not None
        assert mismatch.field_name in ("wdata", "xreg", "regs", "store_data",
                                       "load_data")

    def test_wrong_pc_detected(self):
        system, checker = make_pair(SIMPLE)
        state = {"armed": True}

        def corrupt(events):
            out = []
            for event in events:
                if (isinstance(event, EV.InstrCommit) and state["armed"]
                        and event.order_tag > 5):
                    state["armed"] = False
                    event = EV.InstrCommit(
                        core_id=event.core_id, order_tag=event.order_tag,
                        pc=event.pc ^ 8, instr=event.instr, wdata=event.wdata,
                        rd=event.rd, flags=event.flags,
                        fused_count=event.fused_count)
                out.append(event)
            return out

        mismatch = drive(system, checker, transform=corrupt)
        assert mismatch is not None and mismatch.field_name == "pc"

    def test_wrong_snapshot_detected_with_csr_name(self):
        system, checker = make_pair(SIMPLE)
        state = {"armed": True}

        def corrupt(events):
            out = []
            for event in events:
                if isinstance(event, EV.CsrState) and state["armed"] \
                        and event.order_tag > 10:
                    state["armed"] = False
                    csrs = list(event.csrs)
                    csrs[0] ^= 2  # mstatus
                    event = EV.CsrState(core_id=event.core_id,
                                        order_tag=event.order_tag,
                                        csrs=tuple(csrs))
                out.append(event)
            return out

        mismatch = drive(system, checker, transform=corrupt)
        assert mismatch is not None
        assert "csr[0x300]" in mismatch.field_name

    def test_wrong_refill_detected(self):
        system, checker = make_pair(SIMPLE)
        state = {"armed": True}

        def corrupt(events):
            out = []
            for event in events:
                if isinstance(event, EV.ICacheRefill) and state["armed"]:
                    state["armed"] = False
                    data = list(event.data)
                    data[0] ^= 0xFF
                    event = EV.ICacheRefill(core_id=event.core_id,
                                            order_tag=event.order_tag,
                                            addr=event.addr,
                                            data=tuple(data))
                out.append(event)
            return out

        mismatch = drive(system, checker, transform=corrupt)
        assert mismatch is not None
        assert mismatch.field_name == "refill_data"
        assert mismatch.component == "icache"

    def test_mip_differences_ignored(self):
        system, checker = make_pair(SIMPLE)

        def corrupt(events):
            out = []
            for event in events:
                if isinstance(event, EV.CsrState):
                    csrs = list(event.csrs)
                    csrs[9] ^= 0x80  # mip entry: must not be compared
                    event = EV.CsrState(core_id=event.core_id,
                                        order_tag=event.order_tag,
                                        csrs=tuple(csrs))
                out.append(event)
            return out

        assert drive(system, checker, transform=corrupt) is None


class TestFusedStream:
    def test_fused_commit_advances_multiple_slots(self):
        image = assemble(SIMPLE)
        ref = RefModel(mmio_ranges=REF_MMIO_RANGES)
        ref.load_image(image)
        checker = Checker(ref)
        # Hand-build a fused commit covering the first 3 instructions.
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(image)
        commits = []
        while len(commits) < 3:
            (bundle,) = system.cycle()
            commits.extend(e for e in bundle.events
                           if isinstance(e, EV.InstrCommit))
        last = commits[2]
        fused = EV.InstrCommit(core_id=0, order_tag=last.order_tag,
                               pc=last.pc, instr=last.instr, wdata=last.wdata,
                               rd=last.rd, flags=last.flags, fused_count=3)
        assert checker.process(fused) is None
        assert checker.ref_slot == 3

    def test_fused_stream_via_squash_passes(self):
        from repro.comm.fusion import Completer, SquashFuser

        image = assemble(SIMPLE)
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(image)
        ref = RefModel(mmio_ranges=REF_MMIO_RANGES)
        ref.load_image(image)
        checker = Checker(ref)
        fuser = SquashFuser(window=16, differencing=True)
        completer = Completer()
        for _ in range(40_000):
            (bundle,) = system.cycle()
            for item in fuser.on_cycle(bundle.events):
                assert checker.process(completer.complete(item)) is None
            if system.finished():
                break
        for item in fuser.flush():
            assert checker.process(completer.complete(item)) is None
        assert checker.finished == 0


class TestProtocolErrors:
    def _checker(self):
        ref = RefModel(mmio_ranges=REF_MMIO_RANGES)
        ref.load_image(assemble("nop\n nop\n nop\n li a0, 0\n ebreak"))
        return Checker(ref)

    def test_stale_check_raises(self):
        checker = self._checker()
        checker.process(EV.InstrCommit(order_tag=2, pc=0x80000008,
                                       instr=0x13, fused_count=3))
        with pytest.raises(CheckerProtocolError, match="arrived after"):
            checker.process(EV.IntWriteback(order_tag=0, addr=1, data=0))

    def test_duplicate_slot_consumer_raises(self):
        checker = self._checker()
        checker.process(EV.ArchException(order_tag=5, pc=0, cause=2, tval=0))
        with pytest.raises(CheckerProtocolError, match="duplicate"):
            checker.process(EV.ArchException(order_tag=5, pc=0, cause=2,
                                             tval=0))

    def test_past_consumer_raises(self):
        checker = self._checker()
        checker.process(EV.InstrCommit(order_tag=1, pc=0x80000004,
                                       instr=0x13, fused_count=2))
        with pytest.raises(CheckerProtocolError):
            checker.process(EV.ArchInterrupt(order_tag=0, pc=0, cause=7))
