"""Compiled codecs must be bit-for-bit equivalent to the generic ones.

The hot-loop fast path (PR 4) replaces the interpreted per-field codec
loops with exec-generated functions specialised per event class.  These
tests pin the equivalence: for every registered event type, seeded-random
instances must encode to byte-identical payloads, decode to
field-identical events, and travel the ENC_FULL/ENC_DIFF wire pipeline
(Differencer -> Completer) producing identical wire bytes and identical
reconstructions under either codec implementation.
"""

import random
import struct
from contextlib import contextmanager

import pytest

from repro.comm.fusion.differencing import DIFF_MIN_PAYLOAD, Completer, Differencer
from repro.comm.packing.base import ENC_DIFF, ENC_FULL, Transfer, WireItem
from repro.events import all_event_classes, event_class
from repro.events.base import (
    event_classes_by_id,
    generic_decode_payload,
    generic_encode_payload,
    generic_flatten,
    generic_from_units,
    generic_init,
)

SEED = 0x5EED_CAFE


@contextmanager
def generic_codecs():
    """Swap every event class back to the interpreted reference codecs."""
    saved = {}
    for cls in all_event_classes():
        saved[cls] = (cls.__init__, cls._flatten, cls.to_units,
                      cls.encode_payload, cls.decode_payload, cls.from_units)
        cls.__init__ = generic_init
        cls._flatten = generic_flatten
        cls.to_units = generic_flatten
        cls.encode_payload = generic_encode_payload
        cls.decode_payload = classmethod(generic_decode_payload)
        cls.from_units = classmethod(generic_from_units)
    try:
        yield
    finally:
        for cls, (init, flat, units, enc, dec, fru) in saved.items():
            cls.__init__ = init
            cls._flatten = flat
            cls.to_units = units
            cls.encode_payload = enc
            cls.decode_payload = dec
            cls.from_units = fru


def _element_limit(code):
    return (1 << (8 * struct.calcsize("<" + code))) - 1


def _random_kwargs(cls, rng):
    kwargs = {}
    for spec in cls.FIELDS:
        limit = _element_limit(spec.code)
        if spec.count == 1:
            kwargs[spec.name] = rng.randint(0, limit)
        else:
            kwargs[spec.name] = tuple(
                rng.randint(0, limit) for _ in range(spec.count))
    return kwargs


def _fields_of(event):
    return {spec.name: getattr(event, spec.name)
            for spec in type(event).FIELDS}


def _assert_events_equal(a, b):
    assert type(a) is type(b)
    assert (a.core_id, a.order_tag) == (b.core_id, b.order_tag)
    assert _fields_of(a) == _fields_of(b)


@pytest.mark.parametrize("cls", all_event_classes(),
                         ids=lambda c: c.__name__)
def test_encode_byte_identical(cls):
    rng = random.Random(SEED ^ cls.DESCRIPTOR.event_id)
    for _ in range(5):
        kwargs = _random_kwargs(cls, rng)
        compiled = cls(core_id=1, order_tag=7, **kwargs)
        assert compiled.encode_payload() == generic_encode_payload(compiled)
        assert compiled.to_units() == generic_flatten(compiled)
        with generic_codecs():
            interpreted = cls(core_id=1, order_tag=7, **kwargs)
            reference = interpreted.encode_payload()
        assert compiled.encode_payload() == reference


@pytest.mark.parametrize("cls", all_event_classes(),
                         ids=lambda c: c.__name__)
def test_decode_field_identical(cls):
    rng = random.Random(SEED ^ (cls.DESCRIPTOR.event_id << 8))
    for _ in range(5):
        kwargs = _random_kwargs(cls, rng)
        payload = cls(**kwargs).encode_payload()
        compiled = cls.decode_payload(payload, core_id=2, order_tag=9)
        reference = generic_decode_payload(cls, payload, core_id=2,
                                           order_tag=9)
        _assert_events_equal(compiled, reference)
        # decode must accept an offset into a larger buffer and a
        # memoryview (zero-copy unpackers hand out views, not bytes).
        framed = b"\xAA" * 3 + payload
        offset_decoded = cls.decode_payload(memoryview(framed), offset=3,
                                            core_id=2, order_tag=9)
        _assert_events_equal(compiled, offset_decoded)
        # from_units round-trip.
        units = compiled.to_units()
        _assert_events_equal(compiled,
                             cls.from_units(units, core_id=2, order_tag=9))
        _assert_events_equal(
            compiled, generic_from_units(cls, units, core_id=2, order_tag=9))


@pytest.mark.parametrize("cls", all_event_classes(),
                         ids=lambda c: c.__name__)
def test_constructor_equivalence(cls):
    rng = random.Random(SEED ^ (cls.DESCRIPTOR.event_id << 16))
    kwargs = _random_kwargs(cls, rng)
    compiled = cls(core_id=3, order_tag=11, **kwargs)
    with generic_codecs():
        interpreted = cls(core_id=3, order_tag=11, **kwargs)
    _assert_events_equal(compiled, interpreted)
    # Defaults: zero-filled fields, matching the generic constructor.
    _assert_events_equal(cls(), generic_decode_payload(
        cls, bytes(cls._STRUCT.size)))
    # Error behaviour is part of the contract.
    with pytest.raises(TypeError):
        cls(no_such_field=1)
    array_specs = [s for s in cls.FIELDS if s.count > 1]
    if array_specs:
        with pytest.raises(ValueError):
            cls(**{array_specs[0].name: (0,) * (array_specs[0].count + 1)})


def _mutated(cls, kwargs, rng):
    """Copy of ``kwargs`` with exactly one element changed (diff-friendly)."""
    out = dict(kwargs)
    spec = cls.FIELDS[0]
    limit = _element_limit(spec.code)
    if spec.count == 1:
        out[spec.name] = (kwargs[spec.name] + 1) & limit
    else:
        values = list(kwargs[spec.name])
        index = rng.randrange(spec.count)
        values[index] = (values[index] + 1) & limit
        out[spec.name] = tuple(values)
    return out


@pytest.mark.parametrize("cls", all_event_classes(),
                         ids=lambda c: c.__name__)
def test_wire_roundtrip_full_and_diff(cls):
    """ENC_FULL and ENC_DIFF wire streams are identical under either codec
    implementation, and both reconstruct to identical events."""
    rng = random.Random(SEED ^ (cls.DESCRIPTOR.event_id << 24))
    base = _random_kwargs(cls, rng)
    sequences = [base, _mutated(cls, base, rng), _mutated(cls, base, rng)]

    def run_pipeline():
        differencer = Differencer()
        completer = Completer()
        wire = []
        decoded = []
        for tag, kwargs in enumerate(sequences):
            event = cls(core_id=0, order_tag=tag, **kwargs)
            item = differencer.encode(event)
            wire.append((item.type_id, item.encoding, bytes(item.payload)))
            decoded.append(completer.complete(item))
        return wire, decoded

    compiled_wire, compiled_events = run_pipeline()
    with generic_codecs():
        generic_wire, generic_events = run_pipeline()

    assert compiled_wire == generic_wire
    for a, b in zip(compiled_events, generic_events):
        _assert_events_equal(a, b)
    encodings = {encoding for _, encoding, _ in compiled_wire}
    if cls.payload_size() >= DIFF_MIN_PAYLOAD:
        # A one-element mutation of a diff-eligible event must actually
        # exercise the ENC_DIFF path.
        assert encodings == {ENC_FULL, ENC_DIFF}
    else:
        assert encodings == {ENC_FULL}


def test_slots_everywhere():
    """The hot-path value types carry no per-instance ``__dict__``."""
    for cls in all_event_classes():
        event = cls()
        assert not hasattr(event, "__dict__"), cls.__name__
        with pytest.raises(AttributeError):
            event.no_such_attribute = 1
    item = WireItem(0, 0, 0, b"")
    assert not hasattr(item, "__dict__")
    transfer = Transfer(b"", items=0)
    assert not hasattr(transfer, "__dict__")


def test_flat_registry_parity():
    table = event_classes_by_id()
    classes = all_event_classes()
    assert len(classes) == 32
    for cls in classes:
        event_id = cls.DESCRIPTOR.event_id
        assert table[event_id] is cls
        assert event_class(event_id) is cls
    # Unassigned or out-of-range ids keep the KeyError contract.
    gaps = [i for i, entry in enumerate(table) if entry is None]
    for bad_id in gaps + [-1, len(table), len(table) + 17]:
        with pytest.raises(KeyError):
            event_class(bad_id)
