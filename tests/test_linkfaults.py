"""Resilient transport: framing, link faults, recovery, degradation.

The invariant under test, end to end: **every injected link fault is
either recovered or reported as a structured transport error — never a
spurious DUT mismatch and never a silent pass of corrupted state.**
"""

from __future__ import annotations

import threading

import pytest

from repro.comm.channel import Channel, LinkFailure, ReliableChannel
from repro.comm.framing import (
    FRAME_VERSION,
    HEADER_SIZE,
    MAGIC,
    FrameCrcError,
    FrameError,
    FrameMagicError,
    FrameTruncatedError,
    FrameVersionError,
    decode_frame,
    encode_frame,
)
from repro.comm.linkfaults import (
    LINK_FAULT_CATALOGUE,
    LINK_FAULT_KINDS,
    LinkFaultInjector,
    LinkFaultPlan,
    link_fault_by_name,
)
from repro.comm.loggp import CommCounters, model_overhead
from repro.comm.packing import (
    BatchUnpacker,
    DpicUnpacker,
    FixedLayout,
    FixedUnpacker,
    Transfer,
    TransferDecodeError,
)
from repro.comm.platform import PALLADIUM
from repro.core import (
    CONFIG_BNSD,
    CoSimulation,
    DiffConfig,
    ReliabilityConfig,
    TransportError,
    classify_stream_error,
)
from repro.core.checker import CheckerProtocolError
from repro.dut import XIANGSHAN_DEFAULT, fault_by_name
from repro.events import InstrCommit

pytestmark = pytest.mark.linkfault


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        frame = encode_frame(7, b"payload", packer_id=2, items=3, bubbles=1)
        header, payload = decode_frame(frame)
        assert (header.seq, header.packer_id) == (7, 2)
        assert (header.items, header.bubbles) == (3, 1)
        assert payload == b"payload"
        assert len(frame) == HEADER_SIZE + len(b"payload")

    def test_empty_payload_round_trip(self):
        header, payload = decode_frame(encode_frame(0, b""))
        assert header.length == 0 and payload == b""

    def test_truncated_header(self):
        with pytest.raises(FrameTruncatedError) as excinfo:
            decode_frame(b"\x00" * (HEADER_SIZE - 1))
        assert excinfo.value.expected == HEADER_SIZE
        assert excinfo.value.actual == HEADER_SIZE - 1

    def test_bad_magic(self):
        frame = bytearray(encode_frame(0, b"x"))
        frame[0] ^= 0xFF
        with pytest.raises(FrameMagicError):
            decode_frame(bytes(frame))

    def test_bad_version(self):
        frame = bytearray(encode_frame(0, b"x"))
        frame[len(MAGIC)] = FRAME_VERSION + 1
        with pytest.raises(FrameVersionError):
            decode_frame(bytes(frame))

    def test_truncated_payload(self):
        frame = encode_frame(0, b"hello world")
        with pytest.raises(FrameError):
            decode_frame(frame[:-3])

    def test_every_single_bit_flip_detected(self):
        frame = encode_frame(5, b"critical", packer_id=1, items=2)
        for bit in range(len(frame) * 8):
            corrupted = bytearray(frame)
            corrupted[bit >> 3] ^= 1 << (bit & 7)
            with pytest.raises(FrameError):
                decode_frame(bytes(corrupted))

    def test_crc_error_is_value_error(self):
        frame = bytearray(encode_frame(0, b"data"))
        frame[-1] ^= 0x01  # payload byte (CRC is in the prefix region)
        with pytest.raises(ValueError):
            decode_frame(bytes(frame))
        with pytest.raises(FrameCrcError):
            decode_frame(bytes(frame))


# ----------------------------------------------------------------------
# Catalogue lookups (satellite: structured KeyError messages)
# ----------------------------------------------------------------------
class TestCatalogues:
    def test_link_catalogue_covers_all_kinds(self):
        assert sorted(spec.kind for spec in LINK_FAULT_CATALOGUE) == \
            sorted(LINK_FAULT_KINDS)

    def test_link_fault_by_name(self):
        assert link_fault_by_name("link_drop").kind == "drop"

    def test_link_fault_unknown_name_lists_valid(self):
        with pytest.raises(KeyError) as excinfo:
            link_fault_by_name("nope")
        message = excinfo.value.args[0]
        assert "'nope'" in message
        for spec in LINK_FAULT_CATALOGUE:
            assert spec.name in message

    def test_dut_fault_unknown_name_lists_valid(self):
        with pytest.raises(KeyError) as excinfo:
            fault_by_name("nope")
        message = excinfo.value.args[0]
        assert "'nope'" in message
        assert "cache_line_corruption" in message

    def test_dut_fault_known_name_still_resolves(self):
        assert fault_by_name("cache_line_corruption").name == \
            "cache_line_corruption"


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
class TestInjector:
    def test_positional_latch_fires_once_and_latches(self):
        injector = LinkFaultInjector([LinkFaultPlan("link_drop", trigger=2)])
        outs = [injector.apply(bytes([i])) for i in range(5)]
        assert outs[0] == [b"\x00"] and outs[1] == [b"\x01"]
        assert outs[2] == []  # dropped at index 2
        assert outs[3] == [b"\x03"] and outs[4] == [b"\x04"]
        assert injector.injected["drop"] == 1

    def test_rate_faults_deterministic_per_seed(self):
        def run(seed):
            injector = LinkFaultInjector(
                [LinkFaultPlan("link_bitflip", rate=0.5)], seed=seed)
            return [bytes(b) for i in range(32)
                    for b in injector.apply(bytes([i]) * 8)]

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_duplicate_emits_two_copies(self):
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_duplicate", trigger=0)])
        assert injector.apply(b"abc") == [b"abc", b"abc"]

    def test_reorder_swaps_with_next(self):
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_reorder", trigger=0)])
        assert injector.apply(b"first") == []
        assert injector.apply(b"second") == [b"second", b"first"]

    def test_stall_holds_for_n_frames(self):
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_stall", trigger=0)], stall_frames=2)
        assert injector.apply(b"a") == []
        assert injector.apply(b"b") == [b"b"]
        assert injector.apply(b"c") == [b"c", b"a"]

    def test_flush_releases_held(self):
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_stall", trigger=0)], stall_frames=100)
        assert injector.apply(b"a") == []
        assert injector.flush() == [b"a"]
        assert injector.flush() == []

    def test_reset_clears_held_and_flags(self):
        injector = LinkFaultInjector([
            LinkFaultPlan("link_stall", trigger=0),
            LinkFaultPlan("link_reset", trigger=1),
        ])
        assert injector.apply(b"a") == []  # held by stall
        assert injector.apply(b"b") == []  # reset wipes everything
        assert injector.reset_pending
        assert injector.flush() == []


# ----------------------------------------------------------------------
# ReliableChannel unit behaviour
# ----------------------------------------------------------------------
def _transfer(data: bytes, items: int = 1) -> Transfer:
    return Transfer(data, items=items)


class TestReliableChannel:
    def test_clean_round_trip_preserves_metadata(self):
        channel = ReliableChannel()
        channel.send(Transfer(b"abc", items=4, bubbles=2))
        received = channel.receive()
        assert received.data == b"abc"
        assert (received.items, received.bubbles) == (4, 2)
        assert channel.receive() is None

    def test_framing_overhead_counted_on_wire(self):
        channel = ReliableChannel()
        channel.send(_transfer(b"abcd"))
        assert channel.bytes_sent == HEADER_SIZE + 4
        assert channel.invokes == 1

    def test_drop_recovers_by_retransmit(self):
        injector = LinkFaultInjector([LinkFaultPlan("link_drop", trigger=0)])
        channel = ReliableChannel(injector=injector)
        channel.send(_transfer(b"lost"))
        channel.send(_transfer(b"kept"))
        assert [t.data for t in channel.drain()] == [b"lost", b"kept"]
        assert channel.retransmits == 1
        assert channel.frames_dropped == 1
        assert channel.recovery_us > 0

    def test_bitflip_detected_then_recovered(self):
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_bitflip", trigger=0)])
        channel = ReliableChannel(injector=injector)
        channel.send(_transfer(b"sensitive"))
        assert channel.receive().data == b"sensitive"
        assert channel.crc_errors == 1
        assert channel.retransmits == 1

    def test_duplicate_discarded(self):
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_duplicate", trigger=0)])
        channel = ReliableChannel(injector=injector)
        channel.send(_transfer(b"once"))
        assert [t.data for t in channel.drain()] == [b"once"]
        assert channel.duplicates == 1

    def test_reorder_restored_in_sequence(self):
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_reorder", trigger=0)])
        channel = ReliableChannel(injector=injector)
        channel.send(_transfer(b"one"))
        channel.send(_transfer(b"two"))
        assert [t.data for t in channel.drain()] == [b"one", b"two"]
        assert channel.retransmits == 0  # reorder buffer, no retransmit

    def test_stalled_frame_flushed_when_starving(self):
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_stall", trigger=0)], stall_frames=1000)
        channel = ReliableChannel(injector=injector)
        channel.send(_transfer(b"late"))
        assert channel.receive().data == b"late"

    def test_retries_exhausted_raises_link_failure(self):
        injector = LinkFaultInjector([LinkFaultPlan("link_drop", rate=1.0)])
        channel = ReliableChannel(injector=injector, max_retries=3)
        channel.send(_transfer(b"doomed"))
        with pytest.raises(LinkFailure) as excinfo:
            channel.receive()
        assert excinfo.value.kind == "exhausted"
        assert channel.retransmits == 3
        assert channel.consecutive_failures == 1

    def test_backoff_is_capped_exponential(self):
        injector = LinkFaultInjector([LinkFaultPlan("link_drop", rate=1.0)])
        channel = ReliableChannel(injector=injector, max_retries=4,
                                  backoff_base_us=100.0,
                                  backoff_cap_us=400.0)
        channel.send(_transfer(b"doomed"))
        with pytest.raises(LinkFailure):
            channel.receive()
        # 100, 200, 400 (cap), 400 (cap)
        assert channel.recovery_us == pytest.approx(1100.0)

    def test_reset_loses_retransmit_buffer(self):
        injector = LinkFaultInjector([LinkFaultPlan("link_reset", trigger=0)])
        channel = ReliableChannel(injector=injector)
        channel.send(_transfer(b"gone"))
        with pytest.raises(LinkFailure) as excinfo:
            channel.receive()
        assert excinfo.value.kind == "reset"
        assert channel.resets == 1

    def test_eviction_from_bounded_buffer(self):
        # Hold the first frame back (stall), push enough traffic to
        # evict seq 0 from a 4-slot retransmit buffer, then starve.
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_drop", trigger=0)])
        channel = ReliableChannel(injector=injector, retransmit_slots=4)
        for i in range(8):
            channel.send(_transfer(bytes([i])))
        # Drain the delivered 1..7 out of order demand: seq 0 is missing
        # and was evicted by the later sends.
        with pytest.raises(LinkFailure) as excinfo:
            channel.drain()
        assert excinfo.value.kind == "evicted"

    def test_reset_link_resynchronises(self):
        injector = LinkFaultInjector([LinkFaultPlan("link_reset", trigger=0)])
        channel = ReliableChannel(injector=injector)
        channel.send(_transfer(b"gone"))
        with pytest.raises(LinkFailure):
            channel.receive()
        channel.reset_link()
        assert channel.receive() is None  # resynced: nothing owed
        channel.send(_transfer(b"fresh"))
        assert channel.receive().data == b"fresh"
        assert channel.consecutive_failures == 0

    def test_wire_format_unframed_by_default(self):
        """reliable=False keeps the plain Channel: byte-identical wire."""
        plain = Channel()
        plain.send(_transfer(b"payload"))
        assert plain.bytes_sent == len(b"payload")  # no header added
        cosim_config = CONFIG_BNSD
        assert cosim_config.reliability.reliable is False


class TestChannelInterleavings:
    """Satellite: drain()/receive() interleavings under backpressure."""

    def test_plain_channel_interleaved_receive_then_drain(self):
        channel = Channel(nonblocking=True, queue_depth=2)
        for i in range(4):
            channel.send(_transfer(bytes([i])))
        assert channel.backpressure_events == 3  # occupancies 2, 3, 4
        assert channel.receive().data == b"\x00"
        rest = channel.drain()
        assert [t.data for t in rest] == [b"\x01", b"\x02", b"\x03"]
        assert channel.receive() is None
        assert len(channel) == 0
        assert channel.max_occupancy == 4

    def test_reliable_channel_interleaved_under_backpressure(self):
        channel = ReliableChannel(nonblocking=True, queue_depth=2)
        for i in range(4):
            channel.send(_transfer(bytes([i])))
        assert channel.backpressure_events == 3
        assert channel.receive().data == b"\x00"
        for i in range(4, 6):
            channel.send(_transfer(bytes([i])))
        drained = channel.drain()
        assert [t.data for t in drained] == [bytes([i])
                                             for i in range(1, 6)]
        assert channel.receive() is None

    def test_reliable_drain_is_receive_loop(self):
        """drain() must go through recovery, not bypass it."""
        injector = LinkFaultInjector([LinkFaultPlan("link_drop", trigger=1)])
        channel = ReliableChannel(injector=injector)
        for i in range(3):
            channel.send(_transfer(bytes([i])))
        assert [t.data for t in channel.drain()] == \
            [b"\x00", b"\x01", b"\x02"]
        assert channel.retransmits == 1


# ----------------------------------------------------------------------
# Hardened unpackers (satellite: structured decode errors)
# ----------------------------------------------------------------------
class TestTransferDecodeErrors:
    def test_dpic_truncated(self):
        with pytest.raises(TransferDecodeError) as excinfo:
            DpicUnpacker().unpack(Transfer(b"\x01\x02"))
        err = excinfo.value
        assert err.scheme == "dpic"
        assert err.offset == 2 and err.actual == 2
        assert err.expected > 2
        assert "byte offset" in str(err)

    def test_batch_truncated_header(self):
        # Frame header says 1 block but the block header is cut off.
        with pytest.raises(TransferDecodeError) as excinfo:
            BatchUnpacker().unpack(Transfer(b"\x01\x00\x05"))
        err = excinfo.value
        assert err.scheme == "batch"
        assert err.actual == 3

    def test_batch_trailing_garbage(self):
        with pytest.raises(TransferDecodeError, match="frame parse error"):
            BatchUnpacker().unpack(Transfer(b"\x00\x00" + b"junk"))

    def test_fixed_size_mismatch(self):
        layout = FixedLayout([InstrCommit], num_cores=1)
        with pytest.raises(TransferDecodeError) as excinfo:
            FixedUnpacker(layout).unpack(Transfer(b"\x00" * 7))
        err = excinfo.value
        assert err.scheme == "fixed"
        assert err.expected == layout.packet_size and err.actual == 7

    def test_decode_error_is_value_error(self):
        assert issubclass(TransferDecodeError, ValueError)

    def test_classification(self):
        layout_err = TransferDecodeError("dpic", "x", offset=0)
        assert classify_stream_error(layout_err) == "decode"
        assert classify_stream_error(FrameError("y")) == "frame"
        assert classify_stream_error(CheckerProtocolError()) == "protocol"
        assert classify_stream_error(RuntimeError()) == "stream"


# ----------------------------------------------------------------------
# LogGP recovery charging
# ----------------------------------------------------------------------
class TestRecoveryModel:
    def _counters(self, **link) -> CommCounters:
        counters = CommCounters(cycles=1000, instructions=800, invokes=10,
                                bytes_sent=4096, sw_dispatches=10,
                                sw_events_checked=100, sw_bytes_checked=800,
                                sw_ref_steps=800)
        for key, value in link.items():
            setattr(counters, key, value)
        return counters

    def test_recovery_serialised_in_blocking(self):
        clean = model_overhead(PALLADIUM, 10.0, self._counters(), False)
        faulty = model_overhead(
            PALLADIUM, 10.0,
            self._counters(link_recovery_us=500.0, link_retransmits=2),
            False)
        expected = 500.0 + 2 * PALLADIUM.t_sync_us
        assert faulty.total_us == pytest.approx(clean.total_us + expected)
        assert faulty.recovery_us == pytest.approx(expected)

    def test_recovery_added_outside_nonblocking_max(self):
        clean = model_overhead(PALLADIUM, 10.0, self._counters(), True)
        faulty = model_overhead(
            PALLADIUM, 10.0,
            self._counters(link_recovery_us=500.0, link_retransmits=2),
            True)
        expected = 500.0 + 2 * PALLADIUM.t_sync_us
        assert faulty.total_us == pytest.approx(clean.total_us + expected)

    def test_phase_fractions_include_recovery_and_sum_to_one(self):
        breakdown = model_overhead(
            PALLADIUM, 10.0,
            self._counters(link_recovery_us=500.0, link_retransmits=2),
            False)
        fractions = breakdown.phase_fractions()
        assert "recovery" in fractions
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_zero_recovery_without_link_activity(self):
        breakdown = model_overhead(PALLADIUM, 10.0, self._counters(), False)
        assert breakdown.recovery_us == 0.0

    def test_counters_merge_includes_link_fields(self):
        a = self._counters(link_crc_errors=1, link_retransmits=2,
                           link_frames_dropped=3, link_duplicates=4,
                           link_resets=5, link_degradations=1,
                           link_recovery_us=7.5)
        b = self._counters(link_crc_errors=10, link_recovery_us=2.5)
        a.merge(b)
        assert a.link_crc_errors == 11
        assert a.link_retransmits == 2
        assert a.link_recovery_us == pytest.approx(10.0)


# ----------------------------------------------------------------------
# End-to-end: fault x packer x mode matrix
# ----------------------------------------------------------------------
_RELIABLE = ReliabilityConfig(reliable=True)


def _config(packing: str, nonblocking: bool) -> DiffConfig:
    return DiffConfig(name=f"R-{packing}", packing=packing,
                      nonblocking=nonblocking, reliability=_RELIABLE)


def _clean_run(small_image, packing, nonblocking):
    return CoSimulation(XIANGSHAN_DEFAULT, _config(packing, nonblocking),
                        small_image).run(60_000)


@pytest.mark.parametrize("fault", [spec.name
                                   for spec in LINK_FAULT_CATALOGUE])
@pytest.mark.parametrize("packing", ["dpic", "fixed", "batch"])
def test_every_fault_recovered_or_reported(small_image, fault, packing):
    """The acceptance matrix: all fault kinds x all packers.

    Every cell must end in recovery (identical outcome to a clean run)
    or a structured transport error — never a spurious mismatch.
    """
    clean = _clean_run(small_image, packing, nonblocking=True)
    assert clean.passed
    injector = LinkFaultInjector([LinkFaultPlan(fault, trigger=0)])
    result = CoSimulation(XIANGSHAN_DEFAULT, _config(packing, True),
                          small_image, link=injector).run(60_000)
    assert injector.total_injected > 0, "the fault never fired"
    assert result.mismatch is None, "spurious DUT mismatch from a link fault"
    if result.transport_error is None:
        # Recovered: the run must be indistinguishable from a clean one.
        assert result.passed
        assert result.exit_code == clean.exit_code
        assert result.instructions == clean.instructions
        assert result.uart_output == clean.uart_output
    else:
        assert isinstance(result.transport_error, TransportError)
        assert result.transport_error.kind
        assert not result.passed


@pytest.mark.parametrize("nonblocking", [False, True])
def test_blocking_and_nonblocking_both_recover(small_image, nonblocking):
    injector = LinkFaultInjector(
        [LinkFaultPlan("link_drop", trigger=0)])
    result = CoSimulation(XIANGSHAN_DEFAULT, _config("batch", nonblocking),
                          small_image, link=injector).run(60_000)
    assert result.passed
    assert result.stats.counters.link_retransmits >= 1
    breakdown = result.breakdown(PALLADIUM, 10.0, nonblocking)
    assert breakdown.recovery_us > 0  # recovery charged through LogGP


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seeded_rate_faults_never_mismatch(small_image, seed):
    """Property: random low-rate corruption is always detected-or-
    recovered across every armed fault kind at once."""
    plans = [LinkFaultPlan(spec.name, rate=0.05)
             for spec in LINK_FAULT_CATALOGUE]
    injector = LinkFaultInjector(plans, seed=seed)
    result = CoSimulation(XIANGSHAN_DEFAULT, _config("batch", True),
                          small_image, link=injector).run(120_000)
    assert result.mismatch is None
    assert result.passed or result.transport_error is not None


def test_identical_seed_identical_outcome(small_image):
    def run():
        injector = LinkFaultInjector(
            [LinkFaultPlan("link_bitflip", rate=0.2)], seed=99)
        result = CoSimulation(XIANGSHAN_DEFAULT, _config("dpic", True),
                              small_image, link=injector).run(60_000)
        return (result.passed, result.cycles,
                result.stats.counters.link_retransmits,
                result.stats.counters.link_crc_errors,
                injector.total_injected)

    assert run() == run()


def test_reliable_clean_run_matches_plain(small_image):
    """Framing must not change behaviour — only the wire byte count."""
    plain = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                         small_image).run(60_000)
    reliable = CoSimulation(
        XIANGSHAN_DEFAULT, CONFIG_BNSD.with_(reliability=_RELIABLE),
        small_image).run(60_000)
    assert reliable.passed and plain.passed
    assert reliable.cycles == plain.cycles
    assert reliable.instructions == plain.instructions
    assert reliable.uart_output == plain.uart_output
    assert reliable.stats.counters.invokes == plain.stats.counters.invokes
    assert reliable.stats.counters.bytes_sent == (
        plain.stats.counters.bytes_sent
        + plain.stats.counters.invokes * HEADER_SIZE)


# ----------------------------------------------------------------------
# Degradation ladder + snapshot recovery
# ----------------------------------------------------------------------
def test_reset_recovers_from_snapshot(small_image):
    injector = LinkFaultInjector([LinkFaultPlan("link_reset", trigger=0)])
    result = CoSimulation(XIANGSHAN_DEFAULT, _config("batch", True),
                          small_image, link=injector).run(60_000)
    assert result.passed
    assert result.stats.link_recoveries >= 1
    assert result.stats.counters.link_resets >= 1


def test_reset_without_snapshot_recovery_is_transport_error(small_image):
    config = _config("batch", True).with_(
        reliability=ReliabilityConfig(reliable=True,
                                      snapshot_recovery=False))
    injector = LinkFaultInjector([LinkFaultPlan("link_reset", trigger=0)])
    result = CoSimulation(XIANGSHAN_DEFAULT, config, small_image,
                          link=injector).run(60_000)
    assert result.mismatch is None
    assert result.transport_error is not None
    assert result.transport_error.kind == "reset"
    assert "not a DUT bug" in result.transport_error.describe()


def test_degradation_ladder_steps_down_and_completes(small_image):
    """A one-shot unrecoverable failure with degrade_after=1: the run
    degrades batch -> dpic, recovers from the snapshot, and passes."""
    config = _config("batch", True).with_(
        reliability=ReliabilityConfig(reliable=True, max_retries=0,
                                      degrade_after=1))
    injector = LinkFaultInjector([LinkFaultPlan("link_drop", trigger=0)])
    result = CoSimulation(XIANGSHAN_DEFAULT, config, small_image,
                          link=injector).run(60_000)
    assert result.passed
    assert result.stats.degradations == ["dpic"]
    assert result.stats.link_recoveries == 1
    assert result.stats.counters.link_degradations == 1


def test_degradation_reaches_blocking_bottom(small_image):
    """Persistent heavy loss walks the whole ladder: dpic then blocking;
    the ladder never grows beyond its two steps."""
    config = _config("batch", True).with_(
        reliability=ReliabilityConfig(reliable=True, max_retries=0,
                                      degrade_after=1, max_recoveries=64))
    injector = LinkFaultInjector([LinkFaultPlan("link_drop", rate=0.3)],
                                 seed=7)
    result = CoSimulation(XIANGSHAN_DEFAULT, config, small_image,
                          link=injector).run(240_000)
    assert result.mismatch is None
    assert result.stats.degradations[:2] == ["dpic", "blocking"]
    assert len(result.stats.degradations) <= 2


def test_unreliable_faultylink_truncate_is_structured_error(small_image):
    """Without framing, corruption is still *classified*, not crashed on
    — the hardened unpackers turn it into a transport error."""
    injector = LinkFaultInjector([LinkFaultPlan("link_truncate", trigger=0)])
    result = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                          link=injector).run(60_000)
    assert result.mismatch is None
    assert result.transport_error is not None
    assert result.transport_error.kind in ("decode", "payload", "protocol",
                                           "stream", "frame")


def test_run_summary_carries_transport_fields(small_image):
    injector = LinkFaultInjector([LinkFaultPlan("link_drop", trigger=0)])
    result = CoSimulation(XIANGSHAN_DEFAULT, _config("batch", True),
                          small_image, link=injector).run(60_000)
    summary = result.summarize()
    assert summary.transport_error is None
    assert summary.counters.link_retransmits >= 1
    import pickle

    assert pickle.loads(pickle.dumps(summary)) == summary


# ----------------------------------------------------------------------
# Obs integration
# ----------------------------------------------------------------------
@pytest.mark.obs
def test_link_metrics_recorded_under_obs(small_image):
    from repro.obs import ObsContext

    obs = ObsContext()
    injector = LinkFaultInjector([LinkFaultPlan("link_drop", trigger=0)])
    result = CoSimulation(XIANGSHAN_DEFAULT, _config("batch", True),
                          small_image, obs=obs, link=injector).run(60_000)
    assert result.passed
    assert result.metrics.value("comm.retransmits") >= 1
    assert result.metrics.value("comm.frames_dropped") >= 1


@pytest.mark.obs
def test_clean_run_snapshot_has_no_link_metrics(small_image):
    from repro.obs import ObsContext

    obs = ObsContext()
    result = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                          obs=obs).run(60_000)
    names = {record.name for record in result.metrics.records()}
    assert "comm.retransmits" not in names
    assert "comm.crc_errors" not in names


@pytest.mark.obs
def test_resilience_report_lines_conditional(small_image):
    from repro.toolkit import render_report

    clean = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                         small_image).run(60_000)
    assert "link retransmits" not in render_report(clean.stats)
    injector = LinkFaultInjector([LinkFaultPlan("link_drop", trigger=0)])
    faulty = CoSimulation(XIANGSHAN_DEFAULT, _config("batch", True),
                          small_image, link=injector).run(60_000)
    report = render_report(faulty.stats)
    assert "link retransmits" in report
    assert "link frames dropped" in report


# ----------------------------------------------------------------------
# Campaign + executor satellites
# ----------------------------------------------------------------------
@pytest.mark.campaign
def test_linkfault_campaign_serial_equals_parallel(small_image):
    from repro.parallel import LinkFaultCase, linkfault_campaign

    cases = [
        LinkFaultCase(fault=spec.name, image=small_image, trigger=0,
                      max_cycles=60_000, packing=packing,
                      label=f"{spec.name}/{packing}")
        for spec in LINK_FAULT_CATALOGUE[:3]
        for packing in ("dpic", "batch")
    ]
    config = CONFIG_BNSD.with_(reliability=_RELIABLE)
    serial = linkfault_campaign(cases, XIANGSHAN_DEFAULT, config, workers=1)
    parallel = linkfault_campaign(cases, XIANGSHAN_DEFAULT, config,
                                  workers=2)
    assert serial.render() == parallel.render()
    assert serial.passed and parallel.passed


def test_attempt_with_timeout_falls_back_off_main_thread():
    """Satellite: SIGALRM is only armed on the main thread; elsewhere
    the attempt runs unbounded instead of crashing."""
    from repro.parallel.executor import _attempt_with_timeout

    outcome = {}

    def worker():
        outcome["value"] = _attempt_with_timeout(
            lambda params: params["x"] + 1, {"x": 41}, timeout=0.001)

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert outcome["value"] == 42


def test_attempt_with_timeout_fires_on_main_thread():
    import time

    from repro.parallel.executor import JobTimeout, _attempt_with_timeout

    with pytest.raises(JobTimeout):
        _attempt_with_timeout(lambda params: time.sleep(5), {},
                              timeout=0.05)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_linkfault_command(capsys):
    from repro.cli import main

    code = main(["linkfault", "--workload", "microbench",
                 "--faults", "link_drop,link_bitflip", "--workers", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "recovered" in out
    assert "0 spurious mismatches" in out


def test_cli_linkfault_unknown_fault(capsys):
    from repro.cli import main

    code = main(["linkfault", "--faults", "link_nope", "--workers", "1"])
    out = capsys.readouterr().out
    assert code == 1
    assert "valid link faults" in out
