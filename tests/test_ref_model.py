"""Tests for the reference model and its compensation log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble
from repro.isa import csr as CSR
from repro.isa.const import IRQ_M_TIMER, INTERRUPT_BIT
from repro.isa.devices import UART_BASE, UART_SIZE
from repro.ref import RefModel


def make_ref(source: str, mmio=((UART_BASE, UART_SIZE),)) -> RefModel:
    ref = RefModel(mmio_ranges=mmio)
    ref.load_image(assemble(source))
    return ref


def step_to(ref: RefModel, name: str, limit: int = 100, **kwargs):
    """Step until just *before* the named instruction (pc points at it)."""
    for _ in range(limit):
        word = ref.memory.load(ref.pc(), 4)
        from repro.isa import decode

        if decode(word).name == name:
            return
        ref.step(**kwargs)
    raise AssertionError(f"never reached {name}")


class TestExecution:
    def test_steps_instructions(self):
        ref = make_ref("li t0, 5\n addi t0, t0, 2\n nop")
        ref.step()
        ref.step()
        assert ref.state.xregs[5] == 7

    def test_never_touches_devices(self):
        ref = make_ref(f"li t0, {UART_BASE}\n lb t1, 0(t0)")
        step_to(ref, "lb")
        with pytest.raises(Exception):  # UnsynchronizedNde
            ref.step()

    def test_mmio_load_uses_synced_value(self):
        ref = make_ref(f"li t0, {UART_BASE}\n lb t1, 0(t0)")
        step_to(ref, "lb")
        result = ref.step(mmio_load_value=0x42)
        assert result.mmio_skip
        assert ref.state.xregs[6] == 0x42

    def test_sync_skip_advances_and_writes(self):
        ref = make_ref("nop\n nop")
        pc = ref.pc()
        ref.sync_skip(next_pc=pc + 4, rd=7, wdata=0x99, rfwen=True)
        assert ref.pc() == pc + 4
        assert ref.state.xregs[7] == 0x99

    def test_sync_interrupt_enters_handler(self):
        ref = make_ref("""
            la t0, handler
            csrw mtvec, t0
            nop
        handler:
            nop
        """)
        ref.step()
        ref.step()
        ref.step()
        ref.sync_interrupt(IRQ_M_TIMER)
        assert ref.state.csr.peek(CSR.MCAUSE) == INTERRUPT_BIT | IRQ_M_TIMER
        assert ref.pc() == ref.state.csr.peek(CSR.MTVEC) & ~0x3

    def test_sync_sc_failure_clears_reservation(self):
        ref = make_ref("""
            li sp, 0x80100000
            lr.d t0, (sp)
            sc.d t1, t0, (sp)
        """)
        step_to(ref, "sc.d")
        ref.sync_sc_failure()
        ref.step()  # the sc
        assert ref.state.xregs[6] == 1  # failed, like the DUT


class TestCompensationLog:
    def test_revert_registers(self):
        ref = make_ref("li t0, 1\n li t0, 2\n li t0, 3")
        ref.step()
        mark = ref.checkpoint()
        ref.step()
        ref.step()
        assert ref.state.xregs[5] == 3
        ref.revert(mark)
        assert ref.state.xregs[5] == 1

    def test_revert_memory(self):
        ref = make_ref("""
            li sp, 0x80100000
            li t0, 0xAA
            sd t0, 0(sp)
            li t0, 0xBB
            sd t0, 0(sp)
            ebreak
        """)
        # Run through the first store, checkpoint, then the second.
        step_to(ref, "sd")
        ref.step()
        mark = ref.checkpoint()
        step_to(ref, "ebreak")
        assert ref.memory.load(0x80100000, 8) == 0xBB
        ref.revert(mark)
        assert ref.memory.load(0x80100000, 8) == 0xAA

    def test_revert_pc_and_csr(self):
        ref = make_ref("csrwi mscratch, 5\n csrwi mscratch, 9\n nop")
        ref.step()
        mark = ref.checkpoint()
        pc_before = ref.pc()
        ref.step()
        ref.revert(mark)
        assert ref.pc() == pc_before
        assert ref.state.csr.peek(CSR.MSCRATCH) == 5

    def test_revert_count_reported(self):
        ref = make_ref("li t0, 1\n li t1, 2")
        mark = ref.checkpoint()
        ref.step()
        ref.step()
        assert ref.revert(mark) > 0

    def test_default_revert_uses_last_checkpoint(self):
        ref = make_ref("li t0, 1\n li t0, 2")
        ref.step()
        ref.checkpoint()
        ref.step()
        ref.revert()
        assert ref.state.xregs[5] == 1

    def test_trim_log_bounds_memory(self):
        ref = make_ref("\n".join(["addi t0, t0, 1"] * 50) + "\n nop")
        for _ in range(50):
            ref.step()
        before = len(ref.journal)
        ref.checkpoint()
        ref.trim_log()
        assert len(ref.journal) == 0
        assert before > 0

    def test_revert_not_journaled_again(self):
        ref = make_ref("li t0, 1\n li t0, 2")
        mark = ref.checkpoint()
        ref.step()
        ref.revert(mark)
        assert len(ref.journal) == mark

    def test_memory_bytes_accounting(self):
        ref = make_ref("li sp, 0x80100000\n li t0, 5\n sd t0, 0(sp)")
        for _ in range(3):
            ref.step()
        assert ref.journal.memory_bytes() > 0


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_revert_restores_exact_state(steps, seedval):
    """Property: run N steps past a checkpoint, revert, and the full
    architectural state equals a pristine clone taken at the checkpoint."""
    source = f"""
        li sp, 0x80100000
        li t0, {seedval}
        li t1, 0
    loop:
        add t1, t1, t0
        sd t1, 0(sp)
        csrw mscratch, t1
        srli t0, t0, 1
        addi sp, sp, 8
        bnez t0, loop
    idle:
        addi t2, t2, 1
        j idle
    """
    ref = make_ref(source)
    for _ in range(5):
        ref.step()
    mark = ref.checkpoint()
    snapshot = ref.state.clone()
    mem_snapshot = ref.memory.clone()
    for _ in range(steps):
        ref.step()
    ref.revert(mark)
    assert ref.state.pc == snapshot.pc
    assert ref.state.xregs == snapshot.xregs
    assert ref.state.priv == snapshot.priv
    assert dict(ref.state.csr.items()) == dict(snapshot.csr.items())
    for addr in range(0x80100000, 0x80100000 + 64, 8):
        assert ref.memory.load(addr, 8) == mem_snapshot.load(addr, 8)
