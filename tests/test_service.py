"""Tests for the campaign service: fingerprints, store, scheduler,
protocol.

The asyncio tests drive real event loops via ``asyncio.run`` (no
pytest-asyncio dependency).  Tests that execute real campaigns use tiny
fuzz submissions so they stay fast; scheduler-mechanics tests (cancel,
shutdown re-queue) substitute blocking stub executors through the
``executor_factory`` seam instead of burning simulation time.
"""

import asyncio
import threading
import time
from dataclasses import replace

import pytest

from repro.cli import main as cli_main
from repro.core import CONFIG_B, CONFIG_BNSD
from repro.core.summary import (
    MismatchSummary,
    RunSummary,
    summary_from_dict,
    summary_to_dict,
)
from repro.dut import XIANGSHAN_DEFAULT
from repro.obs import MetricsSnapshot
from repro.parallel import CampaignResult, CampaignStats, JobResult
from repro.service import (
    CampaignService,
    InProcessClient,
    RateLimited,
    ServiceClient,
    ServiceError,
    ServiceServer,
    ServiceStore,
    TokenBucket,
    build_submission,
    canonical_document,
    config_fingerprint,
)

pytestmark = pytest.mark.service


# ----------------------------------------------------------------------
# Canonical fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_param_order_independent(self):
        forward = config_fingerprint(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                                     seeds=4, length=30, kind="fuzz")
        reordered = config_fingerprint(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                                       kind="fuzz", length=30, seeds=4)
        assert forward == reordered

    def test_default_equal_configs_hash_identically(self):
        # A config rebuilt with every field value spelled out explicitly
        # must hash like the original that relied on defaults: the
        # fingerprint walks resolved values, not construction syntax.
        explicit = replace(CONFIG_BNSD)
        assert explicit is not CONFIG_BNSD
        assert (config_fingerprint(XIANGSHAN_DEFAULT, explicit)
                == config_fingerprint(XIANGSHAN_DEFAULT, CONFIG_BNSD))

    def test_submission_defaults_hash_identically(self):
        bare = build_submission("fuzz", {})
        spelled = build_submission("fuzz", {
            "seeds": 10, "start": 0, "length": 100, "fail_fast": False,
            "dut": "xiangshan", "config": "EBINSD"})
        assert bare.fingerprint == spelled.fingerprint
        assert bare.params == spelled.params

    def test_different_configs_differ(self):
        assert (config_fingerprint(XIANGSHAN_DEFAULT, CONFIG_BNSD)
                != config_fingerprint(XIANGSHAN_DEFAULT, CONFIG_B))
        assert (config_fingerprint(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                                   seeds=1)
                != config_fingerprint(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                                      seeds=2))

    def test_canonical_document_tags_types_and_bytes(self):
        doc = canonical_document(CONFIG_BNSD)
        assert doc["__type__"] == type(CONFIG_BNSD).__name__
        assert canonical_document(b"\x01\xff") == {"__bytes__": "01ff"}
        # dict keys are sorted, so insertion order cannot leak in
        assert (list(canonical_document({"b": 1, "a": 2}))
                == ["a", "b"])

    def test_unfingerprintable_value_is_loud(self):
        with pytest.raises(TypeError):
            canonical_document(object())


# ----------------------------------------------------------------------
# Submission catalogue
# ----------------------------------------------------------------------
class TestSubmissions:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown submission kind"):
            build_submission("frobnicate", {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz parameter"):
            build_submission("fuzz", {"bogus": 1})

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown dut"):
            build_submission("fuzz", {"dut": "cray-1"})
        with pytest.raises(ValueError, match="unknown config"):
            build_submission("ladder", {"configs": ["Z", "WAT"]})
        with pytest.raises(ValueError, match="unknown workload"):
            build_submission("fault", {"workload": "solitaire"})

    def test_fault_selection_expands_all(self):
        submission = build_submission("fault", {})
        assert len(submission.params["faults"]) > 1
        # the expanded list is part of the canonical params, so "all"
        # and the explicit list fingerprint identically
        explicit = build_submission(
            "fault", {"faults": submission.params["faults"]})
        assert explicit.fingerprint == submission.fingerprint

    def test_specs_round_trip_from_stored_params(self):
        submission = build_submission("fuzz", {"seeds": 3, "length": 25})
        rebuilt = build_submission(submission.kind, submission.params)
        assert rebuilt.fingerprint == submission.fingerprint
        assert ([spec.label for spec in rebuilt.specs()]
                == [spec.label for spec in submission.specs()])


# ----------------------------------------------------------------------
# Store: durability, dedup, round-trip, crash recovery
# ----------------------------------------------------------------------
def _summary(passed=True, with_mismatch=False, with_metrics=False):
    mismatch = None
    if with_mismatch:
        mismatch = MismatchSummary(
            core_id=0, slot=1, event_type="InstrCommit",
            field_name="pc", expected="0x80000000", actual="0x80000004",
            component="rob", cycle=42,
            description="pc mismatch at cycle 42")
    metrics = None
    if with_metrics:
        metrics = MetricsSnapshot.from_dicts([
            {"name": "run.cycles", "kind": "counter", "value": 10},
            {"name": "comm.bytes_sent", "kind": "counter", "value": 640},
        ])
    return RunSummary(passed=passed, exit_code=0 if passed else 1,
                      cycles=10, instructions=5, mismatch=mismatch,
                      metrics=metrics)


class TestServiceStore:
    def test_wal_pragmas_on_file_store(self, tmp_path):
        store = ServiceStore(str(tmp_path / "svc.db"))
        (journal,) = store.db.execute("PRAGMA journal_mode").fetchone()
        (sync,) = store.db.execute("PRAGMA synchronous").fetchone()
        store.close()
        assert journal == "wal"
        assert sync == 1  # NORMAL

    def test_context_manager_closes(self, tmp_path):
        with ServiceStore(str(tmp_path / "svc.db")) as store:
            store.submit(build_submission("fuzz", {}))
        with pytest.raises(Exception):
            store.db.execute("SELECT 1")
        store.close()  # idempotent

    def test_submissions_survive_restart(self, tmp_path):
        path = str(tmp_path / "svc.db")
        submission = build_submission("fuzz", {"seeds": 2})
        with ServiceStore(path) as store:
            campaign_id, cached = store.submit(submission)
            assert not cached
        with ServiceStore(path) as store:
            row = store.campaign(campaign_id)
            assert row.state == "queued"
            assert row.kind == "fuzz"
            assert row.submission().fingerprint == submission.fingerprint

    def test_dedup_coalesces_and_caches(self):
        with ServiceStore() as store:
            submission = build_submission("fuzz", {"seeds": 2})
            first, cached_first = store.submit(submission)
            second, cached_second = store.submit(submission)
            assert (first, cached_first) == (second, False)
            assert not cached_second  # queued, not finished: coalesced
            store.store_result(
                first, CampaignResult(jobs=[], stats=CampaignStats()),
                "report")
            third, cached_third = store.submit(submission)
            assert third == first
            assert cached_third

    def test_failed_submission_requeues(self):
        with ServiceStore() as store:
            submission = build_submission("fuzz", {"seeds": 2})
            campaign_id, _ = store.submit(submission)
            store.set_state(campaign_id, "failed", error="boom")
            requeued, cached = store.submit(submission)
            assert requeued == campaign_id and not cached
            row = store.campaign(campaign_id)
            assert row.state == "queued"
            assert row.error is None

    def test_result_round_trip_is_value_identical(self):
        jobs = [
            JobResult(index=0, label="seed 0", kind="fuzz", ok=True,
                      summary=_summary(with_metrics=True)),
            JobResult(index=1, label="seed 1", kind="fuzz", ok=True,
                      summary=_summary(passed=False, with_mismatch=True,
                                       with_metrics=True)),
            JobResult(index=2, label="seed 2", kind="fuzz", ok=False,
                      error="Traceback ...\nboom", timed_out=True,
                      attempts=2),
        ]
        campaign = CampaignResult(
            jobs=jobs, stats=CampaignStats(short_circuited=True))
        with ServiceStore() as store:
            campaign_id, _ = store.submit(
                build_submission("fuzz", {"seeds": 3}))
            store.store_result(campaign_id, campaign, "the report")
            loaded = store.load_result(campaign_id)
            assert store.report(campaign_id) == "the report"
            aggregate = store.aggregate_metrics(campaign_id)
        assert loaded.jobs == jobs  # frozen dataclasses: value equality
        assert loaded.stats.short_circuited
        assert loaded.stats.jobs_failed == 1
        assert loaded.stats.jobs_broken == 1
        # the aggregate snapshot folded both per-job snapshots
        assert aggregate.value("run.cycles") == 20
        assert aggregate.value("comm.bytes_sent") == 1280

    def test_summary_json_round_trip(self):
        summary = _summary(passed=False, with_mismatch=True,
                           with_metrics=True)
        assert summary_from_dict(summary_to_dict(summary)) == summary

    def test_recover_orphans_requeues_and_drops_partials(self):
        with ServiceStore() as store:
            campaign_id, _ = store.submit(
                build_submission("fuzz", {"seeds": 2}))
            store.set_state(campaign_id, "running")
            store.db.execute(
                "INSERT INTO jobs (campaign_id, idx, kind, label, ok) "
                "VALUES (?, 0, 'fuzz', 'partial', 1)", (campaign_id,))
            store.db.commit()
            assert store.recover_orphans() == [campaign_id]
            row = store.campaign(campaign_id)
            assert row.state == "queued"
            partials = store.db.execute(
                "SELECT COUNT(*) FROM jobs WHERE campaign_id = ?",
                (campaign_id,)).fetchone()[0]
            assert partials == 0
            assert store.recover_orphans() == []


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.now = 0.5
        assert not bucket.try_acquire()
        clock.now = 1.5
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_capacity_caps_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        clock.now = 100.0
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()


# ----------------------------------------------------------------------
# Scheduler: E2E dedup, progress, cancellation, shutdown, recovery
# ----------------------------------------------------------------------
class CountingFactory:
    """Builds real executors but counts calls and consumed jobs — the
    witness that a cache hit runs no executor work at all."""

    def __init__(self) -> None:
        self.calls = 0
        self.jobs_run = 0

    def __call__(self, submission):
        from repro.parallel import CampaignExecutor

        self.calls += 1
        factory = self

        class CountingExecutor(CampaignExecutor):
            def run(self, specs, on_result=None, should_stop=None):
                def counting(job):
                    factory.jobs_run += 1
                    if on_result is not None:
                        on_result(job)

                return super().run(specs, on_result=counting,
                                   should_stop=should_stop)

        return CountingExecutor(
            workers=1, short_circuit=submission.short_circuit,
            collect_metrics=True)


class BlockingExecutor:
    """A stub executor that parks until the service's cancel hook fires
    (exercises cancellation/shutdown without real simulation work)."""

    def __init__(self, started: threading.Event) -> None:
        self.started = started

    def run(self, specs, on_result=None, should_stop=None):
        self.started.set()
        while not should_stop():
            time.sleep(0.005)
        return CampaignResult(jobs=[],
                              stats=CampaignStats(stopped=True))


FUZZ_PARAMS = {"seeds": 2, "length": 30}


@pytest.mark.campaign
def test_duplicate_submission_is_cache_hit_and_matches_cli(tmp_path,
                                                           capsys):
    """The acceptance E2E: submit the same fuzz campaign twice through
    the in-process client — the first populates the store, the second is
    a cache hit (no executor jobs run), and both fetched reports are
    byte-identical to the one-shot CLI render."""
    factory = CountingFactory()

    async def scenario():
        with ServiceStore(str(tmp_path / "svc.db")) as store:
            service = CampaignService(store, executor_factory=factory)
            client = InProcessClient(service)
            await service.start()
            first = await client.submit("fuzz", FUZZ_PARAMS)
            assert first["cached"] is False
            assert await client.wait(first["campaign"]) == "done"
            jobs_after_first = factory.jobs_run
            second = await client.submit("fuzz", FUZZ_PARAMS)
            assert second["cached"] is True
            assert second["campaign"] == first["campaign"]
            one = await client.results(first["campaign"])
            two = await client.results(second["campaign"])
            await service.stop()
            return one["report"], two["report"], jobs_after_first

    report_one, report_two, jobs_after_first = asyncio.run(scenario())
    assert report_one == report_two
    assert factory.calls == 1  # the cache hit built no executor
    assert factory.jobs_run == jobs_after_first == 2

    assert cli_main(["fuzz", "--seeds", "2", "--length", "30",
                     "--workers", "1"]) == 0
    cli_stdout = capsys.readouterr().out
    assert cli_stdout == report_one + "\n"


@pytest.mark.campaign
def test_crash_recovery_requeues_and_matches_uninterrupted_run(tmp_path):
    """Kill a server mid-campaign (simulated by a row left ``running``
    with partial result rows), restart against the same store: the job
    is re-queued and its final stored report matches an uninterrupted
    run's."""
    params = {"seeds": 2, "length": 25}

    async def run_to_completion(path):
        with ServiceStore(path) as store:
            service = CampaignService(store, workers=1)
            client = InProcessClient(service)
            orphans = await service.start()
            reply = await client.submit("fuzz", params)
            assert await client.wait(reply["campaign"]) == "done"
            report = (await client.results(reply["campaign"]))["report"]
            await service.stop()
            return report, orphans

    expected, _ = asyncio.run(run_to_completion(str(tmp_path / "ref.db")))

    # A dead server's leftovers: state='running', one partial job row.
    crash_path = str(tmp_path / "crashed.db")
    with ServiceStore(crash_path) as store:
        campaign_id, _ = store.submit(build_submission("fuzz", params))
        store.set_state(campaign_id, "running")
        store.set_total_jobs(campaign_id, 2)
        store.db.execute(
            "INSERT INTO jobs (campaign_id, idx, kind, label, ok) "
            "VALUES (?, 0, 'fuzz', 'partial', 1)", (campaign_id,))
        store.db.commit()

    async def restart():
        with ServiceStore(crash_path) as store:
            service = CampaignService(store, workers=1)
            client = InProcessClient(service)
            orphans = await service.start()
            assert orphans == [campaign_id]
            assert await client.wait(campaign_id) == "done"
            report = (await client.results(campaign_id))["report"]
            await service.stop()
            return report

    assert asyncio.run(restart()) == expected


@pytest.mark.campaign
def test_progress_events_stream_in_order(tmp_path):
    async def scenario():
        with ServiceStore() as store:
            service = CampaignService(store, workers=1)
            client = InProcessClient(service)
            await service.start()
            reply = await client.submit("fuzz", FUZZ_PARAMS)
            events = []
            async for event in client.watch(reply["campaign"]):
                events.append(event)
            await service.stop()
            return events

    events = asyncio.run(scenario())
    progress = [e for e in events if e["event"] == "progress"]
    states = [e["state"] for e in events if e["event"] == "state"]
    assert states[-1] == "done"
    assert [e["jobs_done"] for e in progress] == \
        list(range(1, len(progress) + 1))
    assert all(e["jobs_total"] == 2 for e in progress)
    # the metrics view carries real counters from the runs
    assert progress[-1]["metrics"]["run.cycles"] > 0


def test_cancel_queued_campaign():
    async def scenario():
        with ServiceStore() as store:
            # no dispatcher started: the submission stays queued
            service = CampaignService(store)
            client = InProcessClient(service)
            reply = await client.submit("fuzz", FUZZ_PARAMS)
            cancelled = await client.cancel(reply["campaign"])
            assert cancelled["state"] == "cancelled"
            with pytest.raises(ServiceError, match="cancelled"):
                await client.results(reply["campaign"])

    asyncio.run(scenario())


def test_cancel_running_campaign_stops_cooperatively():
    started = threading.Event()

    async def scenario():
        with ServiceStore() as store:
            service = CampaignService(
                store, executor_factory=lambda s: BlockingExecutor(started))
            client = InProcessClient(service)
            await service.start()
            reply = await client.submit("fuzz", FUZZ_PARAMS)
            loop = asyncio.get_running_loop()
            assert await loop.run_in_executor(None, started.wait, 5.0)
            await client.cancel(reply["campaign"])
            assert await client.wait(reply["campaign"]) == "cancelled"
            await service.stop()

    asyncio.run(scenario())


def test_shutdown_requeues_running_campaign():
    """A non-drain stop must put accepted work back on the queue, not
    discard it — the restart-resume guarantee."""
    started = threading.Event()

    async def scenario():
        with ServiceStore() as store:
            service = CampaignService(
                store, executor_factory=lambda s: BlockingExecutor(started))
            client = InProcessClient(service)
            await service.start()
            reply = await client.submit("fuzz", FUZZ_PARAMS)
            loop = asyncio.get_running_loop()
            assert await loop.run_in_executor(None, started.wait, 5.0)
            await service.stop(drain=False)
            return (await client.status(reply["campaign"]))["state"]

    assert asyncio.run(scenario()) == "queued"


@pytest.mark.campaign
def test_graceful_drain_finishes_queued_work():
    async def scenario():
        with ServiceStore() as store:
            service = CampaignService(store, workers=1)
            client = InProcessClient(service)
            await service.start()
            first = await client.submit("fuzz", {"seeds": 1,
                                                 "length": 20})
            second = await client.submit("fuzz", {"seeds": 1,
                                                  "length": 21})
            await service.stop(drain=True)
            return [(await client.status(r["campaign"]))["state"]
                    for r in (first, second)]

    assert asyncio.run(scenario()) == ["done", "done"]


def test_rate_limit_rejects_then_recovers():
    clock = FakeClock()

    async def scenario():
        with ServiceStore() as store:
            service = CampaignService(store, rate=1.0, burst=2,
                                      clock=clock)
            await service.submit("fuzz", {"seeds": 1}, client="c1")
            await service.submit("fuzz", {"seeds": 2}, client="c1")
            with pytest.raises(RateLimited):
                await service.submit("fuzz", {"seeds": 3}, client="c1")
            # other clients have their own budget
            await service.submit("fuzz", {"seeds": 3}, client="c2")
            clock.now = 1.0
            await service.submit("fuzz", {"seeds": 4}, client="c1")

    asyncio.run(scenario())


def test_failed_submission_surfaces_error():
    """A campaign whose stored params no longer build (service-side
    breakage) ends ``failed`` with the error recorded."""

    async def scenario():
        with ServiceStore() as store:
            campaign_id, _ = store.submit(
                build_submission("fuzz", {"seeds": 1, "length": 20}))
            # corrupt the stored params behind the service's back
            store.db.execute(
                "UPDATE campaigns SET params='{\"seeds\": \"wat\"}' "
                "WHERE id = ?", (campaign_id,))
            store.db.commit()
            service = CampaignService(store)
            client = InProcessClient(service)
            await service.start()
            assert await client.wait(campaign_id) == "failed"
            status = await client.status(campaign_id)
            await service.stop()
            return status

    status = asyncio.run(scenario())
    assert status["state"] == "failed"
    assert status["error"]


# ----------------------------------------------------------------------
# The NDJSON TCP protocol
# ----------------------------------------------------------------------
@pytest.mark.campaign
def test_tcp_protocol_round_trip(tmp_path):
    async def scenario():
        with ServiceStore(str(tmp_path / "svc.db")) as store:
            service = CampaignService(store, workers=1)
            server = ServiceServer(service, port=0)
            await server.start()
            host, port = server.address
            async with ServiceClient(host, port) as client:
                assert await client.ping()
                reply = await client.submit("fuzz", FUZZ_PARAMS)
                campaign_id = reply["campaign"]
                events = []
                async for event in client.watch(campaign_id):
                    events.append(event)
                assert events[-1]["state"] == "done"
                status = await client.status(campaign_id)
                assert status["state"] == "done"
                results = await client.results(campaign_id)
                cached = await client.submit("fuzz", FUZZ_PARAMS)
                assert cached["cached"] is True
                # protocol errors carry the validation message
                with pytest.raises(ServiceError,
                                   match="unknown submission kind"):
                    await client.submit("frobnicate", {})
                with pytest.raises(ServiceError, match="no campaign"):
                    await client.status(999)
                with pytest.raises(ServiceError, match="unknown op"):
                    await client._request({"op": "bogus"})
            await server.stop()
            return results["report"]

    report = asyncio.run(scenario())
    assert report.endswith("2/2 passed")


def test_cli_client_reports_missing_server(capsys):
    assert cli_main(["results", "1", "--port", "1"]) == 1
    out = capsys.readouterr().out
    assert "no service at" in out


# ----------------------------------------------------------------------
# Leases, the runtime reaper, and the dead-letter quarantine
# ----------------------------------------------------------------------
class TestLeases:
    """Store-level lease mechanics (no campaigns actually run)."""

    def _queued(self, store, seeds=2):
        campaign_id, cached = store.submit(
            build_submission("fuzz", {"seeds": seeds, "length": 30}))
        assert not cached
        return campaign_id

    def test_claim_carries_a_lease_and_renew_extends_it(self):
        with ServiceStore() as store:
            campaign_id = self._queued(store)
            assert store.claim_next(lease_s=30.0, now=1000.0) \
                == campaign_id
            row = store.campaign(campaign_id)
            assert row.state == "running"
            assert row.lease_expires == 1030.0
            store.renew_lease(campaign_id, 30.0, now=1100.0)
            assert store.campaign(campaign_id).lease_expires == 1130.0
            # renew is a no-op once the campaign left 'running'
            store.set_state(campaign_id, "done")
            store.renew_lease(campaign_id, 30.0, now=1200.0)
            assert store.campaign(campaign_id).lease_expires is None

    def test_reap_requeues_only_expired_unskipped_leases(self):
        with ServiceStore() as store:
            expired = self._queued(store, seeds=1)
            fresh = self._queued(store, seeds=2)
            mine = self._queued(store, seeds=3)
            assert store.claim_next(lease_s=1.0, now=1000.0) == expired
            assert store.claim_next(lease_s=1000.0, now=1000.0) == fresh
            assert store.claim_next(lease_s=1.0, now=1000.0) == mine
            requeued, dead = store.reap_expired(
                now=2000.0, requeue_budget=3, skip={mine})
            assert requeued == [expired] and dead == []
            row = store.campaign(expired)
            assert row.state == "queued"
            assert row.requeues == 1
            assert row.lease_expires is None
            assert store.campaign(fresh).state == "running"
            assert store.campaign(mine).state == "running"

    def test_lease_lag_reports_most_stale_lease(self):
        with ServiceStore() as store:
            assert store.lease_lag(now=1000.0) == 0.0
            campaign_id = self._queued(store)
            store.claim_next(lease_s=10.0, now=1000.0)
            assert store.lease_lag(now=1005.0) == 0.0
            assert store.lease_lag(now=1017.5) == 7.5
            store.set_state(campaign_id, "done")
            assert store.lease_lag(now=1017.5) == 0.0

    def test_budget_exhaustion_dead_letters(self):
        with ServiceStore() as store:
            campaign_id = self._queued(store)
            store.claim_next(lease_s=1.0, now=1000.0)
            requeued, dead = store.reap_expired(now=2000.0,
                                                requeue_budget=1)
            assert requeued == [campaign_id]
            store.claim_next(lease_s=1.0, now=3000.0)
            requeued, dead = store.reap_expired(now=4000.0,
                                                requeue_budget=1)
            assert requeued == [] and dead == [campaign_id]
            row = store.campaign(campaign_id)
            assert row.state == "dead_letter"
            assert "requeue budget exhausted (1/1 requeues used)" \
                in row.error
            letters = store.dead_letters()
            assert [entry[0] for entry in letters] == [campaign_id]
            assert "lease expired" in letters[0][3]

    def test_dead_letter_is_not_revived_by_resubmission(self):
        with ServiceStore() as store:
            campaign_id = self._queued(store)
            store.claim_next(lease_s=1.0, now=1000.0)
            _, dead = store.reap_expired(now=2000.0, requeue_budget=0)
            assert dead == [campaign_id]
            submission = build_submission("fuzz",
                                          {"seeds": 2, "length": 30})
            resubmitted, cached = store.submit(submission)
            assert resubmitted == campaign_id and not cached
            assert store.campaign(campaign_id).state == "dead_letter"

    def test_operator_revival_clears_the_quarantine(self):
        with ServiceStore() as store:
            campaign_id = self._queued(store)
            store.claim_next(lease_s=1.0, now=1000.0)
            store.reap_expired(now=2000.0, requeue_budget=0)
            store.requeue_dead_letter(campaign_id)
            row = store.campaign(campaign_id)
            assert row.state == "queued"
            assert row.requeues == 0 and row.error is None
            assert store.dead_letters() == []
            # revival is only for dead letters
            with pytest.raises(ValueError, match="not dead_letter"):
                store.requeue_dead_letter(campaign_id)

    def test_migration_upgrades_an_old_schema_store(self, tmp_path):
        """A store created before leases/dead-letters existed must come
        up with the new columns patched in and old rows intact."""
        import sqlite3

        path = str(tmp_path / "old.db")
        old = sqlite3.connect(path)
        old.executescript("""
            CREATE TABLE campaigns (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                fingerprint TEXT NOT NULL UNIQUE,
                kind TEXT NOT NULL,
                params TEXT NOT NULL,
                state TEXT NOT NULL DEFAULT 'queued',
                short_circuited INTEGER NOT NULL DEFAULT 0,
                stopped INTEGER NOT NULL DEFAULT 0,
                total_jobs INTEGER NOT NULL DEFAULT 0,
                error TEXT,
                progress TEXT NOT NULL DEFAULT '{}',
                report TEXT
            );
            CREATE TABLE jobs (
                campaign_id INTEGER NOT NULL,
                idx INTEGER NOT NULL,
                kind TEXT NOT NULL,
                label TEXT NOT NULL,
                ok INTEGER NOT NULL,
                timed_out INTEGER NOT NULL DEFAULT 0,
                attempts INTEGER NOT NULL DEFAULT 1,
                error TEXT,
                PRIMARY KEY (campaign_id, idx)
            );
            INSERT INTO campaigns (fingerprint, kind, params)
                VALUES ('abc', 'fuzz', '{}');
        """)
        old.commit()
        old.close()
        with ServiceStore(path) as store:
            row = store.campaigns()[0]
            assert row.fingerprint == "abc"
            assert row.lease_expires is None and row.requeues == 0
            # the patched columns are fully functional
            assert store.claim_next(lease_s=5.0, now=1000.0) == row.id
            assert store.campaign(row.id).lease_expires == 1005.0
            store.db.execute(
                "INSERT INTO jobs (campaign_id, idx, kind, label, ok, "
                "crashed, quarantined) VALUES (?, 0, 'fuzz', 'j', 0, "
                "1, 1)", (row.id,))
            store.db.commit()


@pytest.mark.campaign
def test_runtime_lease_expiry_reaper_requeues_and_rerun_is_identical(
        tmp_path):
    """Satellite 4: a sibling dispatcher claims a campaign and dies
    (simulated: a ``running`` row with a lapsed lease and partial job
    rows, injected while the service is live).  The runtime reaper must
    notice without a restart, re-queue, and the re-run's stored report
    must be byte-identical to an uninterrupted run's."""
    params = {"seeds": 2, "length": 25}

    async def uninterrupted(path):
        with ServiceStore(path) as store:
            service = CampaignService(store, workers=1)
            client = InProcessClient(service)
            await service.start()
            reply = await client.submit("fuzz", params)
            assert await client.wait(reply["campaign"]) == "done"
            report = (await client.results(reply["campaign"]))["report"]
            await service.stop()
            return report

    expected = asyncio.run(uninterrupted(str(tmp_path / "ref.db")))

    async def interrupted(path):
        with ServiceStore(path) as store:
            service = CampaignService(store, workers=1, lease_s=30.0,
                                      requeue_budget=3,
                                      reap_interval=0.02)
            client = InProcessClient(service)
            await service.start()
            # Inject the dead sibling's leftovers while the service is
            # idle: claimed straight on the store (the local dispatcher
            # never saw it), lease long lapsed, one partial job row.
            campaign_id, _ = store.submit(
                build_submission("fuzz", params))
            assert store.claim_next(lease_s=1.0,
                                    now=time.time() - 60) == campaign_id
            store.set_total_jobs(campaign_id, 2)
            store.db.execute(
                "INSERT INTO jobs (campaign_id, idx, kind, label, ok) "
                "VALUES (?, 0, 'fuzz', 'partial', 1)", (campaign_id,))
            store.db.commit()
            assert await client.wait(campaign_id) == "done"
            report = (await client.results(campaign_id))["report"]
            health = await service.health()
            row = store.campaign(campaign_id)
            await service.stop()
            return report, row, health

    report, row, health = asyncio.run(
        interrupted(str(tmp_path / "reaped.db")))
    assert report == expected
    assert row.requeues == 1  # exactly one lease reap, then success
    assert health["supervision"]["lease_reaps"] >= 1
    assert health["supervision"]["requeues"] >= 1
    assert health["states"]["dead_letter"] == 0


def test_overload_rejects_new_campaigns_but_not_coalesces():
    async def scenario():
        with ServiceStore() as store:
            # dispatcher never started: the queue cannot drain
            service = CampaignService(store, max_queue=1)
            client = InProcessClient(service)
            first = await client.submit("fuzz", {"seeds": 1})
            assert first["state"] == "queued"
            with pytest.raises(ServiceError, match="queue full") as exc:
                await client.submit("fuzz", {"seeds": 2})
            assert exc.value.overloaded
            # coalescing onto the queued row adds no work: exempt
            again = await client.submit("fuzz", {"seeds": 1})
            assert again["campaign"] == first["campaign"]
            assert not again["cached"]

    asyncio.run(scenario())


@pytest.mark.campaign
def test_health_verb_over_tcp(tmp_path):
    async def scenario():
        with ServiceStore(str(tmp_path / "svc.db")) as store:
            service = CampaignService(store, workers=1)
            server = ServiceServer(service, port=0)
            await server.start()
            host, port = server.address
            async with ServiceClient(host, port) as client:
                reply = await client.submit("fuzz", FUZZ_PARAMS)
                assert await client.wait(reply["campaign"]) == "done"
                health = await client.health()
            await server.stop()
            return health

    health = asyncio.run(scenario())
    assert health["queue_depth"] == 0
    assert health["states"]["done"] == 1
    assert health["lease_lag_s"] == 0.0
    assert health["dead_letters"] == 0
    assert set(health["supervision"]) == {
        "pool_restarts", "requeues", "poison_quarantined",
        "lease_reaps", "dead_letters"}
