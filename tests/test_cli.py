"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRun:
    def test_run_default(self, capsys):
        code = main(["run", "--workload", "microbench"])
        out = capsys.readouterr().out
        assert code == 0
        assert "HIT GOOD TRAP" in out
        assert "Simulation speed:" in out

    def test_run_selects_platform(self, capsys):
        main(["run", "--workload", "microbench", "--platform", "fpga"])
        assert "FPGA" in capsys.readouterr().out

    def test_run_profile_flag(self, capsys):
        main(["run", "--workload", "microbench", "--profile"])
        assert "invocations/cycle" in capsys.readouterr().out

    def test_run_nutshell_baseline(self, capsys):
        code = main(["run", "--workload", "microbench", "--dut", "nutshell",
                     "--config", "Z"])
        assert code == 0

    def test_run_uart_output_shown(self, capsys):
        main(["run", "--workload", "mmio_echo"])
        assert "hello difftest-h" in capsys.readouterr().out

    def test_max_cycles_override(self, capsys):
        code = main(["run", "--workload", "microbench", "--max-cycles", "5"])
        assert code == 1  # did not finish

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--workload", "nope"])

    def test_run_exports_trace_and_metrics(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.json"
        metrics = tmp_path / "run.metrics.jsonl"
        code = main(["run", "--workload", "microbench",
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics)])
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace written to {trace}" in out
        assert f"metrics written to {metrics}" in out
        doc = json.loads(trace.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        names = [json.loads(line)["name"]
                 for line in metrics.read_text().splitlines()]
        assert "comm.bytes_sent" in names

    def test_run_report_identical_with_obs(self, capsys, tmp_path):
        code1 = main(["run", "--workload", "microbench"])
        plain = capsys.readouterr().out
        code2 = main(["run", "--workload", "microbench",
                      "--metrics-out", str(tmp_path / "m.jsonl")])
        observed = capsys.readouterr().out
        assert code1 == code2 == 0
        # Same counter report, modulo the export confirmation line.
        trimmed = "\n".join(line for line in observed.splitlines()
                            if not line.startswith("metrics written"))
        assert plain.strip() == trimmed.strip()


class TestProfile:
    def test_profile_prints_stage_breakdown(self, capsys):
        code = main(["profile", "--workload", "microbench"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pipeline profile" in out
        for stage in ("capture", "pack", "transfer", "dispatch",
                      "ref_step", "compare"):
            assert stage in out
        assert "slowest stage:" in out
        assert "DiffTest-H counters" in out

    def test_profile_exports(self, capsys, tmp_path):
        trace = tmp_path / "p.json"
        metrics = tmp_path / "p.jsonl"
        code = main(["profile", "--workload", "microbench",
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics)])
        assert code == 0
        doc = json.loads(trace.read_text())
        phases = {e["name"] for e in doc["traceEvents"]
                  if e["ph"] == "X"}
        assert {"capture", "compare"} <= phases
        assert metrics.read_text().strip()


class TestLadder:
    def test_ladder_prints_four_rows(self, capsys):
        code = main(["ladder", "--workload", "microbench"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("Z", "B", "BIN", "EBINSD"):
            assert name in out


class TestInject:
    def test_inject_detects_and_reports(self, capsys):
        code = main(["inject", "--fault", "store_queue_mismatch",
                     "--workload", "microbench", "--trigger", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "detected at cycle" in out
        assert "debug report" in out

    def test_inject_unknown_fault(self):
        with pytest.raises(KeyError):
            main(["inject", "--fault", "nope"])


class TestFuzz:
    def test_fuzz_passes(self, capsys):
        code = main(["fuzz", "--seeds", "3", "--length", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3/3 passed" in out

    def test_fuzz_exports_campaign_telemetry(self, capsys, tmp_path):
        trace = tmp_path / "fuzz.json"
        metrics = tmp_path / "fuzz.jsonl"
        code = main(["fuzz", "--seeds", "2", "--length", "40",
                     "--workers", "1", "--trace-out", str(trace),
                     "--metrics-out", str(metrics)])
        assert code == 0
        doc = json.loads(trace.read_text())
        job_names = [e["name"] for e in doc["traceEvents"]
                     if e["ph"] == "X"]
        assert len(job_names) == 2
        assert all(name.startswith("job:") for name in job_names)
        by_name = {json.loads(line)["name"]: json.loads(line)
                   for line in metrics.read_text().splitlines()}
        # Aggregated over both seeds' runs.
        assert by_name["run.cycles"]["value"] > 0
        assert by_name["comm.invokes"]["kind"] == "counter"


@pytest.mark.campaign
class TestWorkersFlag:
    """`--workers N` must parse, run, and emit byte-identical summaries."""

    def _capture(self, capsys, argv):
        code = main(argv)
        return code, capsys.readouterr().out

    def test_fuzz_workers_matches_serial(self, capsys):
        base = ["fuzz", "--seeds", "4", "--length", "40"]
        code1, serial = self._capture(capsys, base + ["--workers", "1"])
        code2, parallel = self._capture(capsys, base + ["--workers", "2"])
        assert code1 == code2 == 0
        assert serial == parallel
        assert "4/4 passed" in serial

    def test_fuzz_fail_fast_flag_parses(self, capsys):
        code, out = self._capture(
            capsys, ["fuzz", "--seeds", "2", "--length", "40",
                     "--fail-fast", "--workers", "2"])
        assert code == 0
        assert "2/2 passed" in out

    def test_ladder_workers_matches_serial(self, capsys):
        base = ["ladder", "--workload", "microbench"]
        code1, serial = self._capture(capsys, base + ["--workers", "1"])
        code2, parallel = self._capture(capsys, base + ["--workers", "2"])
        assert code1 == code2 == 0
        assert serial == parallel
        for name in ("Z", "B", "BIN", "EBINSD"):
            assert name in serial

    def test_sweep_workers_matches_serial(self, capsys):
        base = ["sweep", "--workload", "microbench"]
        code1, serial = self._capture(capsys, base + ["--workers", "1"])
        code2, parallel = self._capture(capsys, base + ["--workers", "2"])
        assert code1 == code2 == 0
        assert serial == parallel
        assert "sweep of bw_bytes_per_us" in serial

    def test_sweep_multi_config(self, capsys):
        code, out = self._capture(
            capsys, ["sweep", "--workload", "microbench",
                     "--config", "B,EBINSD", "--workers", "2"])
        assert code == 0
        assert out.count("sweep of bw_bytes_per_us") == 2
        assert "(microbench, B)" in out
        assert "(microbench, EBINSD)" in out


class TestListings:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "linux_boot_like" in out
        assert "kvm_like" in out

    def test_faults(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "#3964" in out
        assert len(out.strip().splitlines()) == 19

    def test_events(self, capsys):
        assert main(["events"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 32
        assert "VecRegState" in out

    def test_workloads_json(self, capsys):
        import json

        assert main(["workloads", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in rows}
        assert {"linux_boot_like", "kvm_like"} <= names
        assert all(row["description"] for row in rows)

    def test_faults_json(self, capsys):
        import json

        assert main(["faults", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 19
        assert {"pull_request", "name", "component",
                "description"} <= set(rows[0])

    def test_events_json(self, capsys):
        import json

        assert main(["events", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 32
        by_name = {row["name"]: row for row in rows}
        assert by_name["ArchInterrupt"]["nde"] is True
        assert by_name["InstrCommit"]["payload_bytes"] > 0

    def test_json_listing_matches_text_listing(self, capsys):
        import json

        assert main(["faults", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert main(["faults"]) == 0
        text = capsys.readouterr().out
        for row in rows:
            assert row["name"] in text

    def test_module_invocation(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "faults"],
            capture_output=True, text=True)
        assert proc.returncode == 0
        assert "#3964" in proc.stdout


class TestSweep:
    def test_sweep_default(self, capsys):
        code = main(["sweep", "--workload", "microbench"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep of bw_bytes_per_us" in out
        assert "non-blocking gain" in out
        assert "reduction needed" in out

    def test_sweep_custom_values(self, capsys):
        code = main(["sweep", "--workload", "microbench",
                     "--parameter", "t_sync_us", "--values", "1,10,100"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("KHz") >= 3

    def test_sweep_exports_metrics(self, capsys, tmp_path):
        metrics = tmp_path / "sweep.jsonl"
        code = main(["sweep", "--workload", "microbench",
                     "--config", "B,EBINSD", "--workers", "1",
                     "--metrics-out", str(metrics)])
        assert code == 0
        names = [json.loads(line)["name"]
                 for line in metrics.read_text().splitlines()]
        assert "run.cycles" in names
        assert names == sorted(names)
