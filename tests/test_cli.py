"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_default(self, capsys):
        code = main(["run", "--workload", "microbench"])
        out = capsys.readouterr().out
        assert code == 0
        assert "HIT GOOD TRAP" in out
        assert "Simulation speed:" in out

    def test_run_selects_platform(self, capsys):
        main(["run", "--workload", "microbench", "--platform", "fpga"])
        assert "FPGA" in capsys.readouterr().out

    def test_run_profile_flag(self, capsys):
        main(["run", "--workload", "microbench", "--profile"])
        assert "invocations/cycle" in capsys.readouterr().out

    def test_run_nutshell_baseline(self, capsys):
        code = main(["run", "--workload", "microbench", "--dut", "nutshell",
                     "--config", "Z"])
        assert code == 0

    def test_run_uart_output_shown(self, capsys):
        main(["run", "--workload", "mmio_echo"])
        assert "hello difftest-h" in capsys.readouterr().out

    def test_max_cycles_override(self, capsys):
        code = main(["run", "--workload", "microbench", "--max-cycles", "5"])
        assert code == 1  # did not finish

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--workload", "nope"])


class TestLadder:
    def test_ladder_prints_four_rows(self, capsys):
        code = main(["ladder", "--workload", "microbench"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("Z", "B", "BIN", "EBINSD"):
            assert name in out


class TestInject:
    def test_inject_detects_and_reports(self, capsys):
        code = main(["inject", "--fault", "store_queue_mismatch",
                     "--workload", "microbench", "--trigger", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "detected at cycle" in out
        assert "debug report" in out

    def test_inject_unknown_fault(self):
        with pytest.raises(KeyError):
            main(["inject", "--fault", "nope"])


class TestFuzz:
    def test_fuzz_passes(self, capsys):
        code = main(["fuzz", "--seeds", "3", "--length", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3/3 passed" in out


@pytest.mark.campaign
class TestWorkersFlag:
    """`--workers N` must parse, run, and emit byte-identical summaries."""

    def _capture(self, capsys, argv):
        code = main(argv)
        return code, capsys.readouterr().out

    def test_fuzz_workers_matches_serial(self, capsys):
        base = ["fuzz", "--seeds", "4", "--length", "40"]
        code1, serial = self._capture(capsys, base + ["--workers", "1"])
        code2, parallel = self._capture(capsys, base + ["--workers", "2"])
        assert code1 == code2 == 0
        assert serial == parallel
        assert "4/4 passed" in serial

    def test_fuzz_fail_fast_flag_parses(self, capsys):
        code, out = self._capture(
            capsys, ["fuzz", "--seeds", "2", "--length", "40",
                     "--fail-fast", "--workers", "2"])
        assert code == 0
        assert "2/2 passed" in out

    def test_ladder_workers_matches_serial(self, capsys):
        base = ["ladder", "--workload", "microbench"]
        code1, serial = self._capture(capsys, base + ["--workers", "1"])
        code2, parallel = self._capture(capsys, base + ["--workers", "2"])
        assert code1 == code2 == 0
        assert serial == parallel
        for name in ("Z", "B", "BIN", "EBINSD"):
            assert name in serial

    def test_sweep_workers_matches_serial(self, capsys):
        base = ["sweep", "--workload", "microbench"]
        code1, serial = self._capture(capsys, base + ["--workers", "1"])
        code2, parallel = self._capture(capsys, base + ["--workers", "2"])
        assert code1 == code2 == 0
        assert serial == parallel
        assert "sweep of bw_bytes_per_us" in serial

    def test_sweep_multi_config(self, capsys):
        code, out = self._capture(
            capsys, ["sweep", "--workload", "microbench",
                     "--config", "B,EBINSD", "--workers", "2"])
        assert code == 0
        assert out.count("sweep of bw_bytes_per_us") == 2
        assert "(microbench, B)" in out
        assert "(microbench, EBINSD)" in out


class TestListings:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "linux_boot_like" in out
        assert "kvm_like" in out

    def test_faults(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "#3964" in out
        assert len(out.strip().splitlines()) == 19

    def test_events(self, capsys):
        assert main(["events"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 32
        assert "VecRegState" in out

    def test_module_invocation(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "faults"],
            capture_output=True, text=True)
        assert proc.returncode == 0
        assert "#3964" in proc.stdout


class TestSweep:
    def test_sweep_default(self, capsys):
        code = main(["sweep", "--workload", "microbench"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep of bw_bytes_per_us" in out
        assert "non-blocking gain" in out
        assert "reduction needed" in out

    def test_sweep_custom_values(self, capsys):
        code = main(["sweep", "--workload", "microbench",
                     "--parameter", "t_sync_us", "--values", "1,10,100"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("KHz") >= 3
