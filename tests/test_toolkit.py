"""Tests for the tuning toolkit: counters, SQL traces, trace dump/reload."""

import io

import pytest

import repro.events as EV
from repro.core import CONFIG_BNSD, run_cosim
from repro.dut import XIANGSHAN_DEFAULT, DutSystem
from repro.toolkit import (
    TraceDb,
    TraceReader,
    TraceWriter,
    connect,
    render_event_profile,
    render_report,
    replay_trace,
)


def collect_trace(image: bytes, max_cycles=40_000):
    """Run the DUT alone and collect (cycle, events) pairs."""
    system = DutSystem(XIANGSHAN_DEFAULT)
    system.load_image(image)
    out = []
    for _ in range(max_cycles):
        (bundle,) = system.cycle()
        if bundle.events:
            out.append((bundle.cycle, bundle.events))
        if system.finished():
            break
    return out


class TestPerfCounters:
    def test_report_renders_all_counters(self, small_image):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                           max_cycles=60_000)
        report = render_report(result.stats)
        for needle in ("fusion ratio", "packet utilization", "REF steps",
                       "bytes on the wire"):
            assert needle in report

    def test_event_profile_table(self, small_image):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                           max_cycles=60_000)
        table = render_event_profile(result.stats)
        assert "InstrCommit" in table
        assert "VecRegState" in table

    def test_event_profile_top_filter(self, small_image):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                           max_cycles=60_000)
        table = render_event_profile(result.stats, top=3)
        assert len(table.splitlines()) == 4  # header + 3


class TestSqlTrace:
    @pytest.fixture()
    def db(self, small_image):
        with TraceDb() as db:
            for cycle, events in collect_trace(small_image):
                db.record_cycle(cycle, events)
            yield db

    def test_file_backed_db_uses_wal(self, tmp_path):
        # durable-queue configuration: WAL journaling with
        # synchronous=NORMAL (fsync on checkpoint, not on every commit)
        with TraceDb(str(tmp_path / "trace.db")) as db:
            (journal,) = db._db.execute("PRAGMA journal_mode").fetchone()
            (sync,) = db._db.execute("PRAGMA synchronous").fetchone()
            assert journal == "wal"
            assert sync == 1  # NORMAL

    def test_shared_connect_helper_applies_pragmas(self, tmp_path):
        conn = connect(str(tmp_path / "shared.db"))
        try:
            (journal,) = conn.execute("PRAGMA journal_mode").fetchone()
            assert journal == "wal"
        finally:
            conn.close()

    def test_close_is_idempotent(self, small_image):
        db = TraceDb()
        for cycle, events in collect_trace(small_image, max_cycles=500):
            db.record_cycle(cycle, events)
        db.close()
        db.close()  # second close must be a no-op, not an error
        with pytest.raises(Exception):
            db.volume_by_type()

    def test_context_manager_closes_on_exit(self):
        with TraceDb() as db:
            pass
        with pytest.raises(Exception):
            db._db.execute("SELECT 1")

    def test_volume_by_type(self, db):
        rows = db.volume_by_type()
        names = [row[0] for row in rows]
        assert "IntRegState" in names
        assert rows == sorted(rows, key=lambda r: -r[2])

    def test_nde_fraction(self, db):
        assert 0.0 <= db.nde_fraction() < 0.5

    def test_events_per_cycle(self, db):
        assert db.events_per_cycle() > 0

    def test_cycle_reload_preserves_events(self, db, small_image):
        original = collect_trace(small_image)
        reloaded = db.cycles()
        assert len(reloaded) == len(original)
        assert reloaded[0][1] == original[0][1]

    def test_whatif_fusion_strategies(self, db):
        fused = db.simulate_fusion(window=32, differencing=True)
        coupled = db.simulate_fusion(window=32, differencing=True,
                                     order_coupled=True)
        nodiff = db.simulate_fusion(window=32, differencing=False)
        assert fused["reduction"] > 1
        assert fused["wire_bytes"] <= nodiff["wire_bytes"]
        assert fused["fusion_ratio"] >= coupled["fusion_ratio"]

    def test_window_sweep_monotone_reduction(self, db):
        small = db.simulate_fusion(window=4, differencing=False)
        large = db.simulate_fusion(window=64, differencing=False)
        assert large["fusion_ratio"] >= small["fusion_ratio"]


class TestTraceDump:
    def test_roundtrip_in_memory(self, small_image):
        trace = collect_trace(small_image)
        sink = io.BytesIO()
        writer = TraceWriter(sink)
        for cycle, events in trace:
            writer.write_cycle(cycle, events)
        reloaded = list(TraceReader(sink.getvalue()))
        assert len(reloaded) == len(trace)
        assert reloaded[3][1] == trace[3][1]

    def test_file_roundtrip(self, small_image, tmp_path):
        path = str(tmp_path / "dut.trace")
        trace = collect_trace(small_image)
        with TraceWriter(path) as writer:
            for cycle, events in trace:
                writer.write_cycle(cycle, events)
        with TraceReader(path) as reader:
            assert sum(len(events) for _, events in reader) == \
                sum(len(events) for _, events in trace)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="not a DiffTest-H trace"):
            TraceReader(b"XXXX\x01\x00\x00\x00")

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match=r"trace header at byte "
                                             r"offset 0"):
            TraceReader(b"")

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError, match=r"truncated trace: expected "
                                             r"8 bytes for trace header"):
            TraceReader(b"DTHT\x01")

    def test_truncated_cycle_header_rejected(self, small_image):
        trace = collect_trace(small_image)
        sink = io.BytesIO()
        writer = TraceWriter(sink)
        for cycle, events in trace:
            writer.write_cycle(cycle, events)
        # Chop mid-way through the last cycle record's header.
        blob = sink.getvalue()[:-1]
        reader = TraceReader(blob)
        with pytest.raises(ValueError, match="byte offset"):
            list(reader)

    def test_truncated_event_payload_rejected(self, small_image):
        trace = collect_trace(small_image)
        sink = io.BytesIO()
        writer = TraceWriter(sink)
        cycle, events = next((c, e) for c, e in trace if e)
        writer.write_cycle(cycle, events)
        # Drop the tail of the final event's payload: the reader must
        # name the event and the offset, not raise a bare struct.error.
        blob = sink.getvalue()[:-3]
        reader = TraceReader(blob)
        with pytest.raises(ValueError,
                           match=rf"event {len(events)}/{len(events)} "
                                 rf"payload of cycle {cycle} at byte "
                                 rf"offset \d+"):
            list(reader)

    def test_truncated_event_length_rejected(self, small_image):
        trace = collect_trace(small_image)
        cycle, events = next((c, e) for c, e in trace if e)
        sink = io.BytesIO()
        writer = TraceWriter(sink)
        writer.write_cycle(cycle, [])
        # Claim one event but provide only half its length prefix.
        blob = sink.getvalue()
        import struct
        blob = (blob[:8] + struct.pack("<IH", cycle, 1) + b"\x05")
        with pytest.raises(ValueError, match="event 1/1 length of cycle"):
            list(TraceReader(blob))

    def test_replay_trace_drives_checker(self, small_image):
        trace = collect_trace(small_image)
        sink = io.BytesIO()
        writer = TraceWriter(sink)
        for cycle, events in trace:
            writer.write_cycle(cycle, events)
        result = replay_trace(sink.getvalue(), small_image)
        assert result.passed
        assert result.events > 0

    def test_replay_trace_detects_corruption(self, small_image):
        trace = collect_trace(small_image)
        # Corrupt one commit's wdata mid-trace (a verification-logic bug
        # reproduced without re-running the DUT).
        corrupted = []
        armed = True
        for cycle, events in trace:
            new_events = []
            for event in events:
                if (armed and isinstance(event, EV.InstrCommit)
                        and event.order_tag > 20
                        and event.flags & EV.FLAG_RF_WEN):
                    armed = False
                    event = EV.InstrCommit(
                        core_id=event.core_id, order_tag=event.order_tag,
                        pc=event.pc, instr=event.instr,
                        wdata=event.wdata ^ 2, rd=event.rd,
                        flags=event.flags, fused_count=event.fused_count)
                new_events.append(event)
            corrupted.append((cycle, new_events))
        sink = io.BytesIO()
        writer = TraceWriter(sink)
        for cycle, events in corrupted:
            writer.write_cycle(cycle, events)
        result = replay_trace(sink.getvalue(), small_image)
        assert not result.passed
        assert result.mismatch is not None


class TestCompare:
    @pytest.fixture(scope="class")
    def two_runs(self, small_image):
        from repro.core import CONFIG_Z

        before = run_cosim(XIANGSHAN_DEFAULT, CONFIG_Z, small_image,
                           max_cycles=60_000)
        after = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                          max_cycles=60_000)
        return before.stats, after.stats

    def test_json_roundtrip(self, two_runs):
        from repro.toolkit import load_stats_dict, stats_to_dict, stats_to_json

        before, _after = two_runs
        text = stats_to_json(before)
        assert load_stats_dict(text) == stats_to_dict(before)

    def test_compare_renders_changes(self, two_runs):
        from repro.toolkit import compare_runs

        before, after = two_runs
        table = compare_runs(before, after, "Z", "EBINSD")
        assert "invokes" in table
        assert "%" in table  # relative changes rendered
        lines = table.splitlines()
        assert len(lines) > 15

    def test_compare_shows_byte_reduction(self, two_runs):
        from repro.toolkit import stats_to_dict

        before, after = two_runs
        assert stats_to_dict(after)["bytes_sent"] < \
            stats_to_dict(before)["bytes_sent"] / 5

    def test_load_rejects_non_dict(self):
        from repro.toolkit import load_stats_dict

        with pytest.raises(ValueError):
            load_stats_dict("[1, 2]")
