"""Tests for physical memory, the bus, and devices."""

import pytest

from repro.isa import Bus, PhysicalMemory
from repro.isa.devices import (
    CLINT_MSIP,
    CLINT_MTIME,
    CLINT_MTIMECMP,
    LSR_RX_READY,
    LSR_TX_IDLE,
    UART_LSR,
    UART_THR,
    Clint,
    PlicLite,
    Uart,
    attach_standard_devices,
)
from repro.isa.memory import MemoryError64


class TestPhysicalMemory:
    def test_zero_initialised(self):
        mem = PhysicalMemory()
        assert mem.load(0x1234, 8) == 0

    def test_store_load_roundtrip(self):
        mem = PhysicalMemory()
        mem.store(0x1000, 8, 0x1122334455667788)
        assert mem.load(0x1000, 8) == 0x1122334455667788
        assert mem.load(0x1000, 4) == 0x55667788

    def test_little_endian(self):
        mem = PhysicalMemory()
        mem.store(0, 4, 0x11223344)
        assert mem.load_bytes(0, 4) == bytes.fromhex("44332211")

    def test_cross_page_access(self):
        mem = PhysicalMemory()
        mem.store(0xFFC, 8, 0xAABBCCDDEEFF0011)
        assert mem.load(0xFFC, 8) == 0xAABBCCDDEEFF0011
        assert mem.load(0x1000, 4) == 0xAABBCCDD

    def test_store_truncates_to_width(self):
        mem = PhysicalMemory()
        mem.store(0, 1, 0x1FF)
        assert mem.load(0, 1) == 0xFF

    def test_load_words(self):
        mem = PhysicalMemory()
        for i in range(8):
            mem.store(64 + 8 * i, 8, i + 1)
        assert mem.load_words(64, 8) == (1, 2, 3, 4, 5, 6, 7, 8)

    def test_sparse_allocation(self):
        mem = PhysicalMemory()
        mem.store(1 << 40, 1, 7)
        assert mem.allocated_bytes() == 4096

    def test_clone_is_independent(self):
        mem = PhysicalMemory()
        mem.store(0, 8, 42)
        other = mem.clone()
        other.store(0, 8, 99)
        assert mem.load(0, 8) == 42


class TestBus:
    def test_memory_fallthrough(self):
        bus = Bus()
        bus.store(0x100, 8, 77)
        value, mmio = bus.load(0x100, 8)
        assert value == 77 and not mmio

    def test_device_routing(self):
        bus = Bus()
        uart, _clint, _plic = attach_standard_devices(bus)
        assert bus.is_mmio(0x1000_0000)
        assert not bus.is_mmio(0x8000_0000)
        bus.store(0x1000_0000 + UART_THR, 1, ord("x"))
        assert uart.text() == "x"

    def test_device_read_flags_mmio(self):
        bus = Bus()
        attach_standard_devices(bus)
        _value, mmio = bus.load(0x1000_0000 + UART_LSR, 1)
        assert mmio

    def test_overlapping_devices_rejected(self):
        bus = Bus()
        bus.attach(0x1000, 0x100, Uart())
        with pytest.raises(ValueError, match="overlaps"):
            bus.attach(0x1080, 0x100, Uart())

    def test_fetch_from_mmio_faults(self):
        bus = Bus()
        attach_standard_devices(bus)
        with pytest.raises(MemoryError64):
            bus.fetch(0x1000_0000)


class TestUart:
    def test_output_collects(self):
        uart = Uart()
        for ch in b"abc":
            uart.write(UART_THR, 1, ch)
        assert uart.text() == "abc"

    def test_lsr_tx_always_idle(self):
        uart = Uart()
        assert uart.read(UART_LSR, 1) & LSR_TX_IDLE

    def test_rx_from_input_script(self):
        uart = Uart(input_script=b"hi")
        assert uart.read(UART_LSR, 1) & LSR_RX_READY
        assert uart.read(UART_THR, 1) == ord("h")
        assert uart.read(UART_THR, 1) == ord("i")
        assert not uart.read(UART_LSR, 1) & LSR_RX_READY

    def test_reads_counted(self):
        uart = Uart()
        uart.read(UART_LSR, 1)
        uart.read(UART_THR, 1)
        assert uart.reads == 2


class TestClint:
    def test_tick_divides(self):
        clint = Clint(divider=16)
        clint.tick(15)
        assert clint.mtime == 0
        clint.tick(1)
        assert clint.mtime == 1

    def test_mtip_threshold(self):
        clint = Clint(divider=1)
        clint.mtimecmp[0] = 5
        clint.tick(4)
        assert not clint.mtip(0)
        clint.tick(1)
        assert clint.mtip(0)

    def test_mtime_readable_via_bus_offset(self):
        clint = Clint(divider=1)
        clint.tick(0x1122)
        assert clint.read(CLINT_MTIME, 8) == 0x1122

    def test_mtimecmp_write_read(self):
        clint = Clint(num_harts=2)
        clint.write(CLINT_MTIMECMP + 8, 8, 999)  # hart 1
        assert clint.mtimecmp[1] == 999
        assert clint.read(CLINT_MTIMECMP + 8, 8) == 999
        assert clint.mtimecmp[0] == (1 << 64) - 1

    def test_msip(self):
        clint = Clint(num_harts=2)
        clint.write(CLINT_MSIP + 4, 4, 1)
        assert clint.msip_pending(1)
        assert not clint.msip_pending(0)


class TestPlic:
    def test_claim_pops_lowest(self):
        plic = PlicLite()
        plic.raise_irq(9)
        plic.raise_irq(3)
        assert plic.eip()
        assert plic.read(0, 4) == 3
        assert plic.read(0, 4) == 9
        assert not plic.eip()

    def test_duplicate_raise_ignored(self):
        plic = PlicLite()
        plic.raise_irq(5)
        plic.raise_irq(5)
        plic.read(0, 4)
        assert not plic.eip()
