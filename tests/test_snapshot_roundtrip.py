"""Snapshot round-trip fidelity: the substrate of checkpoint slicing.

A boundary seed travels as ``take_snapshot(system).transportable()``
pickled across a process boundary, is restored into a *freshly built*
system in the worker, and the resumed run must be indistinguishable —
cycle for cycle — from one that never stopped.  These tests pin that
contract at the state level: every architectural register and CSR
(including the free-running MCYCLE/MINSTRET), every memory page, the
cache/TLB/store-buffer arrays, device state (UART, CLINT, PLIC) and the
stall-model RNG must survive the trip.
"""

import pickle

import pytest

from repro.dut import DutSystem, NUTSHELL, restore_snapshot, take_snapshot
from repro.isa import csr as CSR
from repro.isa.const import DRAM_BASE
from repro.isa.devices import Uart
from repro.workloads import build

pytestmark = pytest.mark.slicing

WORKLOAD = build("memory_churn", array_kb=8, passes=1)
SPLIT = 1500  # cycles before the snapshot
TAIL = 1200  # cycles resumed after the restore

PROBED_CSRS = (CSR.MCYCLE, CSR.MINSTRET, CSR.MSTATUS, CSR.MEPC,
               CSR.MCAUSE, CSR.MTVEC, CSR.SATP, CSR.MSCRATCH)


def fresh_system(uart_input: bytes = b"") -> DutSystem:
    system = DutSystem(NUTSHELL, seed=2025, uart_input=uart_input)
    system.load_image(WORKLOAD.image, DRAM_BASE)
    return system


def advance(system: DutSystem, cycles: int) -> None:
    for _ in range(cycles):
        if system.finished():
            return
        system.cycle()


def assert_same_state(a: DutSystem, b: DutSystem) -> None:
    """Field-level identity of two systems (everything a snapshot must
    carry — compare the machines, not the snapshot objects)."""
    assert a.memory._pages == b.memory._pages
    assert bytes(a.uart.output) == bytes(b.uart.output)
    assert a.uart.pending_input() == b.uart.pending_input()
    assert (a.clint.mtime, a.clint.mtimecmp, a.clint.msip,
            a.clint._subticks) == \
        (b.clint.mtime, b.clint.mtimecmp, b.clint.msip, b.clint._subticks)
    assert a.plic.pending == b.plic.pending
    for ca, cb in zip(a.cores, b.cores):
        assert ca.hart.instret == cb.hart.instret
        assert ca.cycle_count == cb.cycle_count
        assert ca.retired == cb.retired
        assert ca.finished == cb.finished
        assert ca._stall == cb._stall
        assert ca._rng.getstate() == cb._rng.getstate()
        sa, sb = ca.state, cb.state
        assert sa.pc == sb.pc
        assert sa.priv == sb.priv
        assert sa.xregs == sb.xregs
        assert sa.fregs == sb.fregs
        assert sa.vregs == sb.vregs
        assert sa.csr._values == sb.csr._values
        for addr in PROBED_CSRS:
            assert sa.csr.peek(addr) == sb.csr.peek(addr), hex(addr)
        assert ca.icache._sets == cb.icache._sets
        assert ca.dcache._sets == cb.dcache._sets
        assert ca.l2cache._sets == cb.l2cache._sets
        assert (ca.icache.hits, ca.icache.misses, ca.dcache.hits,
                ca.dcache.misses, ca.l2cache.hits, ca.l2cache.misses) == \
            (cb.icache.hits, cb.icache.misses, cb.dcache.hits,
             cb.dcache.misses, cb.l2cache.hits, cb.l2cache.misses)
        assert ca.tlbs.itlb._entries == cb.tlbs.itlb._entries
        assert ca.tlbs.dtlb._entries == cb.tlbs.dtlb._entries
        assert ca.tlbs.l2._entries == cb.tlbs.l2._entries
        assert ca.sbuffer._lines == cb.sbuffer._lines
        assert ca.monitor.slot == cb.monitor.slot
        assert (ca.monitor._fp_dirty, ca.monitor._vec_dirty,
                ca.monitor._last_hyper, ca.monitor._last_trigger,
                ca.monitor._last_debug) == \
            (cb.monitor._fp_dirty, cb.monitor._vec_dirty,
             cb.monitor._last_hyper, cb.monitor._last_trigger,
             cb.monitor._last_debug)


def pickled_restore(snapshot, uart_input: bytes = b"") -> DutSystem:
    """The exact worker-side path: transportable → pickle → restore."""
    blob = pickle.dumps(snapshot.transportable())
    system = fresh_system(uart_input=uart_input)
    restore_snapshot(system, pickle.loads(blob))
    return system


class TestPickleRoundtrip:
    def test_restored_system_matches_source(self):
        source = fresh_system(uart_input=b"abc")
        advance(source, SPLIT)
        restored = pickled_restore(take_snapshot(source),
                                   uart_input=b"abc")
        assert_same_state(source, restored)

    def test_transportable_drops_only_the_decode_cache(self):
        source = fresh_system()
        advance(source, SPLIT)
        snapshot = take_snapshot(source)
        wire = snapshot.transportable()
        assert snapshot.cores[0].decode_cache  # warm after 1500 cycles
        assert wire.cores[0].decode_cache == {}
        assert wire.cores[0].instret == snapshot.cores[0].instret
        assert wire.memory is snapshot.memory  # pages already a clone

    def test_snapshot_is_isolated_from_the_live_system(self):
        """Continuing the source must not mutate a taken snapshot."""
        source = fresh_system()
        advance(source, SPLIT)
        snapshot = take_snapshot(source)
        pc_at_split = snapshot.cores[0].arch_state.pc
        pages_at_split = {index: bytes(page) for index, page
                          in snapshot.memory._pages.items()}
        advance(source, 500)
        assert snapshot.cores[0].arch_state.pc == pc_at_split
        assert {index: bytes(page) for index, page
                in snapshot.memory._pages.items()} == pages_at_split


class TestResumeEquivalence:
    def test_resumed_run_matches_uninterrupted(self):
        """split-at-SPLIT + TAIL more cycles == SPLIT+TAIL straight."""
        reference = fresh_system()
        advance(reference, SPLIT + TAIL)

        source = fresh_system()
        advance(source, SPLIT)
        resumed = pickled_restore(take_snapshot(source))
        advance(resumed, TAIL)
        assert_same_state(reference, resumed)
        # MINSTRET keeps free-running through the restore, in step with
        # the hart's retirement counter.
        probe = resumed.cores[0].state.csr.peek
        assert probe(CSR.MINSTRET) == \
            reference.cores[0].state.csr.peek(CSR.MINSTRET)
        assert probe(CSR.MINSTRET) == resumed.cores[0].hart.instret

    def test_resumed_run_finishes_identically(self):
        reference = fresh_system()
        advance(reference, WORKLOAD.max_cycles)
        assert reference.finished()

        source = fresh_system()
        advance(source, SPLIT)
        resumed = pickled_restore(take_snapshot(source))
        advance(resumed, WORKLOAD.max_cycles)
        assert resumed.finished()
        assert resumed.exit_code() == reference.exit_code()
        assert resumed.uart.text() == reference.uart.text()
        assert_same_state(reference, resumed)

    def test_restore_rewinds_a_diverged_system(self):
        """Restore overwrites state wholesale — a system that ran past
        the snapshot point is pulled back exactly, not merged."""
        reference = fresh_system()
        advance(reference, SPLIT)

        system = fresh_system()
        advance(system, SPLIT)
        snapshot = take_snapshot(system)
        advance(system, 700)  # diverge past the checkpoint
        restore_snapshot(system, snapshot)
        assert_same_state(reference, system)


class TestUartRestore:
    """The public UART restore pair used by snapshot restore."""

    def test_restore_replaces_output_and_pending_input(self):
        uart = Uart(input_script=b"abc")
        uart.write(0x00, 1, ord("x"))
        assert uart.read(0x00, 1) == ord("a")
        uart.restore(b"hi", b"yz")
        assert uart.text() == "hi"
        assert uart.pending_input() == b"yz"
        # The restored input script is the one subsequent reads consume.
        assert uart.read(0x00, 1) == ord("y")
        assert uart.pending_input() == b"z"

    def test_roundtrip_via_snapshot_fields(self):
        uart = Uart(input_script=b"12345")
        for byte in b"OUT":
            uart.write(0x00, 1, byte)
        uart.read(0x00, 1)  # consume "1"
        output, pending = bytes(uart.output), uart.pending_input()
        other = Uart()
        other.restore(output, pending)
        assert other.text() == "OUT"
        assert other.pending_input() == b"2345"
