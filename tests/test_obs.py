"""Tests for the observability subsystem: registry, tracer, exporters.

Covers the subsystem's contracts: merge rules are order-independent
(campaign aggregation must not depend on worker count), no-op mode
records nothing and allocates nothing per call, the Chrome-trace export
is valid trace-event JSON, and a parallel campaign folds to the same
metrics as a serial one.
"""

import io
import json

import pytest

from repro.core import CONFIG_BNSD, run_cosim
from repro.dut import XIANGSHAN_DEFAULT
from repro.obs import (
    NULL_OBS,
    MetricRegistry,
    MetricsSnapshot,
    ObsContext,
    Tracer,
    chrome_trace,
    metrics_lines,
    record_run_stats,
    render_metrics,
    render_profile,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.toolkit import render_report
from repro.workloads import fuzz_campaign

pytestmark = pytest.mark.obs

#: Every span name the framework hot path emits.
PIPELINE_PHASES = {"capture", "fuse", "pack", "transfer", "dispatch",
                   "ref_step", "compare"}


# ----------------------------------------------------------------------
# Registry / instruments
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricRegistry()
        counter = registry.counter("comm.invokes")
        counter.inc()
        counter.inc(4)
        gauge = registry.gauge("comm.max_queue_occupancy")
        gauge.set_max(3)
        gauge.set_max(1)  # lower sample must not win
        hist = registry.histogram("comm.transfer_bytes")
        for size in (10, 100, 1000):
            hist.observe(size)
        snap = registry.snapshot()
        assert snap.value("comm.invokes") == 5
        assert snap.value("comm.max_queue_occupancy") == 3
        record = snap.metrics["comm.transfer_bytes"]
        assert record.count == 3
        assert record.total == 1110
        assert record.minimum == 10 and record.maximum == 1000
        assert sum(record.bucket_counts) == 3

    def test_same_name_returns_same_instrument(self):
        registry = MetricRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a.b")

    def test_set_counter_is_idempotent_fold(self):
        registry = MetricRegistry()
        registry.set_counter("run.cycles", 100)
        registry.set_counter("run.cycles", 100)
        assert registry.snapshot().value("run.cycles") == 100

    def test_snapshot_value_default(self):
        snap = MetricRegistry().snapshot()
        assert snap.value("missing.metric") == 0
        assert snap.value("missing.metric", default=-1) == -1


# ----------------------------------------------------------------------
# Merge semantics: commutative + associative (campaign determinism)
# ----------------------------------------------------------------------
def _snapshot(counter, gauge, observations):
    registry = MetricRegistry()
    registry.counter("c.total").inc(counter)
    registry.gauge("g.peak").set_max(gauge)
    hist = registry.histogram("h.sizes")
    for value in observations:
        hist.observe(value)
    return registry.snapshot()


class TestMerge:
    def test_merge_commutative(self):
        a = _snapshot(3, 7, [1, 2])
        b = _snapshot(5, 2, [100])
        assert a.merge(b) == b.merge(a)

    def test_merge_associative_any_order(self):
        snaps = [_snapshot(1, 9, [4]), _snapshot(10, 3, [40, 400]),
                 _snapshot(100, 6, [])]
        a, b, c = snaps
        left = a.merge(b).merge(c)
        right = a.merge(c.merge(b))
        assert left == right
        assert left == MetricsSnapshot.merge_all(reversed(snaps))
        assert left.value("c.total") == 111
        assert left.value("g.peak") == 9
        assert left.metrics["h.sizes"].count == 3

    def test_merge_all_skips_none(self):
        snap = _snapshot(2, 2, [])
        total = MetricsSnapshot.merge_all([None, snap, None])
        assert total.value("c.total") == 2

    def test_merge_disjoint_names(self):
        a = _snapshot(1, 1, [])
        registry = MetricRegistry()
        registry.counter("other.one").inc(7)
        b = registry.snapshot()
        merged = a.merge(b)
        assert merged.value("c.total") == 1
        assert merged.value("other.one") == 7

    def test_mismatched_kind_merge_raises(self):
        r1, r2 = MetricRegistry(), MetricRegistry()
        r1.counter("x").inc()
        r2.gauge("x").set(1)
        with pytest.raises(ValueError):
            r1.snapshot().merge(r2.snapshot())


# ----------------------------------------------------------------------
# No-op mode
# ----------------------------------------------------------------------
class TestNoOpMode:
    def test_disabled_registry_shares_singletons(self):
        registry = MetricRegistry(enabled=False)
        assert registry.counter("a") is registry.counter("b")
        assert registry.gauge("a") is registry.gauge("b")
        assert registry.histogram("a") is registry.histogram("b")
        registry.counter("a").inc(100)
        registry.gauge("a").set_max(100)
        registry.histogram("a").observe(100)
        assert len(registry) == 0
        assert not registry.snapshot()

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("capture")
        assert span is tracer.span("pack")  # shared null span
        with span:
            pass
        tracer.add_complete("job:x", ts_us=0.0, dur_us=5.0)
        assert tracer.records == []
        assert tracer.aggregate() == {}

    def test_null_obs_context(self):
        assert not NULL_OBS.enabled
        assert ObsContext.disabled() is NULL_OBS
        assert not NULL_OBS.registry.enabled
        assert not NULL_OBS.tracer.enabled


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_aggregation(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("compare", cycle=7):
                pass
        stats = tracer.aggregate()
        assert stats["compare"].count == 3
        assert stats["compare"].total_us >= stats["compare"].max_us
        assert all(r.name == "compare" and r.cycle == 7
                   for r in tracer.records)

    def test_record_cap_keeps_aggregates(self):
        tracer = Tracer(max_records=2)
        for _ in range(5):
            with tracer.span("capture"):
                pass
        assert len(tracer.records) == 2
        assert tracer.dropped_records == 3
        assert tracer.aggregate()["capture"].count == 5  # never capped


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def instrumented_run(small_image):
    obs = ObsContext()
    result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                       max_cycles=60_000, obs=obs)
    assert result.passed
    return obs, result


class TestExport:
    def test_chrome_trace_round_trips_json(self, instrumented_run):
        obs, _result = instrumented_run
        sink = io.StringIO()
        write_chrome_trace(obs.tracer, sink)
        doc = json.loads(sink.getvalue())
        assert doc == chrome_trace(obs.tracer)
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "M")
            if event["ph"] == "X":
                assert isinstance(event["ts"], float)
                assert isinstance(event["dur"], float)
                assert event["dur"] >= 0
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert PIPELINE_PHASES <= names

    def test_chrome_trace_has_both_timelines(self, instrumented_run):
        obs, _result = instrumented_run
        events = chrome_trace(obs.tracer)["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {0, 1}  # wall clock + modeled cycles

    def test_metrics_jsonl_parses_and_is_sorted(self, instrumented_run):
        _obs, result = instrumented_run
        sink = io.StringIO()
        write_metrics_jsonl(result.metrics, sink)
        lines = sink.getvalue().strip().splitlines()
        assert lines == metrics_lines(result.metrics)
        payloads = [json.loads(line) for line in lines]
        names = [p["name"] for p in payloads]
        assert names == sorted(names)
        by_name = {p["name"]: p for p in payloads}
        assert by_name["comm.bytes_sent"]["kind"] == "counter"
        assert by_name["comm.transfer_bytes"]["kind"] == "histogram"
        assert by_name["comm.transfer_bytes"]["count"] > 0

    def test_render_profile_lists_every_phase(self, instrumented_run):
        obs, _result = instrumented_run
        text = render_profile(obs.tracer)
        for phase in PIPELINE_PHASES:
            assert phase in text
        assert "slowest stage:" in text

    def test_render_metrics_smoke(self, instrumented_run):
        _obs, result = instrumented_run
        text = render_metrics(result.metrics)
        assert "comm.bytes_sent" in text


# ----------------------------------------------------------------------
# Framework integration
# ----------------------------------------------------------------------
class TestFrameworkIntegration:
    def test_snapshot_matches_stats(self, instrumented_run):
        _obs, result = instrumented_run
        snap = result.metrics
        stats = result.stats
        assert snap.value("run.cycles") == stats.counters.cycles
        assert snap.value("comm.invokes") == stats.counters.invokes
        assert snap.value("comm.bytes_sent") == stats.counters.bytes_sent
        assert snap.value("capture.events") == stats.events_captured
        assert (snap.value("run.events_captured")
                == stats.events_captured)
        assert (snap.value("checker.compares")
                == stats.counters.sw_events_checked)
        assert (snap.value("comm.max_queue_occupancy")
                == stats.max_queue_occupancy)
        assert (snap.value("replay.buffer_peak")
                == stats.replay_buffer_peak)
        hist = snap.metrics["comm.transfer_bytes"]
        assert hist.count == stats.counters.invokes
        assert hist.total == stats.counters.bytes_sent

    def test_report_identical_with_and_without_obs(self, small_image):
        plain = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                          max_cycles=60_000)
        obs = ObsContext()
        observed = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                             max_cycles=60_000, obs=obs)
        assert plain.metrics is None
        assert observed.metrics is not None
        assert (render_report(plain.stats)
                == render_report(observed.stats,
                                 snapshot=observed.metrics))

    def test_record_run_stats_duck_typed(self, instrumented_run):
        _obs, result = instrumented_run
        registry = MetricRegistry()
        record_run_stats(registry, result.stats)
        rebuilt = registry.snapshot()
        for name in ("run.cycles", "comm.bytes_sent", "fusion.breaks",
                     "checker.ref_steps", "replay.checkpoints"):
            assert rebuilt.value(name) == result.metrics.value(name)


# ----------------------------------------------------------------------
# Campaign aggregation: parallel == serial
# ----------------------------------------------------------------------
@pytest.mark.campaign
def test_campaign_metrics_parallel_equals_serial():
    seeds = range(4)

    def run_with(workers):
        campaign = fuzz_campaign(seeds, length=40,
                                 dut_config=XIANGSHAN_DEFAULT,
                                 diff_config=CONFIG_BNSD, workers=workers,
                                 collect_metrics=True)
        assert campaign.passed
        return campaign

    serial = run_with(1)
    parallel = run_with(2)
    assert all(job.summary.metrics for job in serial.jobs)
    serial_agg = serial.aggregate_metrics()
    parallel_agg = parallel.aggregate_metrics()
    assert serial_agg == parallel_agg
    assert serial_agg.value("run.cycles") == sum(
        job.summary.cycles for job in serial.jobs)


@pytest.mark.campaign
def test_campaign_without_metrics_collects_nothing():
    campaign = fuzz_campaign(range(2), length=30,
                             dut_config=XIANGSHAN_DEFAULT,
                             diff_config=CONFIG_BNSD, workers=1)
    assert campaign.passed
    assert all(job.summary.metrics is None for job in campaign.jobs)
    assert not campaign.aggregate_metrics()


@pytest.mark.campaign
def test_campaign_job_spans_recorded():
    obs = ObsContext()
    campaign = fuzz_campaign(range(3), length=30,
                             dut_config=XIANGSHAN_DEFAULT,
                             diff_config=CONFIG_BNSD, workers=1, obs=obs)
    assert campaign.passed
    names = [record.name for record in obs.tracer.records]
    assert len(names) == 3
    assert all(name.startswith("job:") for name in names)
