"""Tests for the area and overhead analysis models."""

import pytest

from repro.analysis import (
    breakdown_row,
    communication_fraction,
    estimate_area,
    probe_bits,
    render_table,
)
from repro.comm import FPGA_VU19P, PALLADIUM
from repro.core import CONFIG_BNSD, CONFIG_Z, run_cosim
from repro.dut import (
    NUTSHELL,
    XIANGSHAN_DEFAULT,
    XIANGSHAN_DUAL,
    XIANGSHAN_MINIMAL,
)


class TestAreaModel:
    def test_figure15_anchor_without_batch(self):
        # Paper: ~6% area overhead without Batch, across XS configs.
        for config in (XIANGSHAN_MINIMAL, XIANGSHAN_DEFAULT, XIANGSHAN_DUAL):
            report = estimate_area(config, with_batch=False)
            assert 0.04 <= report.overhead_fraction <= 0.09, config.name

    def test_figure15_anchor_with_batch(self):
        # Paper: ~25% average with Batch enabled.
        fractions = [
            estimate_area(config, with_batch=True).overhead_fraction
            for config in (XIANGSHAN_MINIMAL, XIANGSHAN_DEFAULT,
                           XIANGSHAN_DUAL)
        ]
        assert all(0.18 <= f <= 0.32 for f in fractions)
        average = sum(fractions) / len(fractions)
        assert 0.20 <= average <= 0.30

    def test_batch_is_the_dominant_unit(self):
        report = estimate_area(XIANGSHAN_DEFAULT, with_batch=True)
        assert report.parts["batch"] > report.parts["replay_buffer"]
        assert report.parts["replay_buffer"] > report.parts["monitor"]

    def test_probe_bits_scale_with_width_and_cores(self):
        assert probe_bits(XIANGSHAN_MINIMAL) < probe_bits(XIANGSHAN_DEFAULT)
        assert probe_bits(XIANGSHAN_DUAL) == 2 * probe_bits(XIANGSHAN_DEFAULT)

    def test_nutshell_probes_tiny(self):
        assert probe_bits(NUTSHELL) < probe_bits(XIANGSHAN_DEFAULT) / 5

    def test_squash_optional(self):
        with_squash = estimate_area(XIANGSHAN_DEFAULT, with_squash=True)
        without = estimate_area(XIANGSHAN_DEFAULT, with_squash=False)
        assert with_squash.difftest_mgates > without.difftest_mgates


class TestOverheadBreakdown:
    @pytest.fixture(scope="class")
    def baseline_run(self, small_image):
        return run_cosim(XIANGSHAN_DEFAULT, CONFIG_Z, small_image,
                         max_cycles=60_000)

    def test_baseline_communication_dominates(self, baseline_run):
        # Section 2.3: >98% of baseline co-simulation time is communication.
        fraction = communication_fraction(
            baseline_run.stats, PALLADIUM, XIANGSHAN_DEFAULT, False)
        assert fraction > 0.90

    def test_optimized_overhead_small_on_palladium(self, small_image):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                           max_cycles=60_000)
        fraction = communication_fraction(
            result.stats, PALLADIUM, XIANGSHAN_DEFAULT, True)
        assert fraction < 0.6

    def test_fpga_startup_share_higher_than_palladium(self, baseline_run):
        pldm = breakdown_row("pldm", baseline_run.stats, PALLADIUM,
                             XIANGSHAN_DEFAULT)
        fpga = breakdown_row("fpga", baseline_run.stats, FPGA_VU19P,
                             XIANGSHAN_DEFAULT)
        # Figure 2 observation: FPGA shows higher startup share but lower
        # transmission share (relative to its own communication time).
        pldm_comm = 1 - pldm.fractions["dut"]
        fpga_comm = 1 - fpga.fractions["dut"]
        assert fpga.fractions["startup"] / fpga_comm > \
            pldm.fractions["startup"] / pldm_comm
        assert fpga.fractions["transmission"] / fpga_comm < \
            pldm.fractions["transmission"] / pldm_comm

    def test_render_table(self, baseline_run):
        rows = [breakdown_row("XiangShan / Palladium", baseline_run.stats,
                              PALLADIUM, XIANGSHAN_DEFAULT)]
        table = render_table(rows)
        assert "XiangShan / Palladium" in table
        assert "KHz" in table
