"""Checker soundness fuzzing: corrupting any checked field is detected.

A clean DUT event stream is recorded once; then a single randomly-chosen
checked field of a randomly-chosen event is flipped and the stream is fed
through the checker.  Soundness property: *every* such corruption of a
checked quantity produces a mismatch (and never a protocol error).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.events as EV
from repro.core.checker import Checker
from repro.core.framework import REF_MMIO_RANGES
from repro.dut import XIANGSHAN_DEFAULT, DutSystem
from repro.isa import assemble
from repro.isa import csr as CSR
from repro.ref import RefModel

PROGRAM = """
_start:
    li sp, 0x80100000
    li t0, 40
    li t1, 0
loop:
    add t1, t1, t0
    sd t1, -8(sp)
    ld t2, -8(sp)
    mul t3, t1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""

#: (event class, field, transform) — checked quantities.
_CHECKED_FIELDS = [
    (EV.InstrCommit, "pc", lambda v: v ^ 4),
    (EV.IntWriteback, "data", lambda v: v ^ 1),
    # (corrupting IntWriteback.addr is NOT always detectable: two
    #  registers can legitimately hold equal values)
    (EV.IntRegState, "regs", lambda v: (v[0],) + (v[1] ^ 2,) + v[2:]),
    (EV.FpRegState, "regs", lambda v: (v[0] ^ 1,) + v[1:]),
    (EV.StoreEvent, "data", lambda v: v ^ 8),
    (EV.LoadEvent, "data", lambda v: v ^ 8),
    (EV.ICacheRefill, "data", lambda v: (v[0] ^ 0xFF,) + v[1:]),
    (EV.DCacheRefill, "data", lambda v: (v[0] ^ 0xFF,) + v[1:]),
]


def _clean_stream():
    system = DutSystem(XIANGSHAN_DEFAULT)
    system.load_image(assemble(PROGRAM))
    events = []
    for _ in range(40_000):
        (bundle,) = system.cycle()
        events.extend(bundle.events)
        if system.finished():
            break
    return events


@pytest.fixture(scope="module")
def clean_stream():
    return _clean_stream()


def _fresh_checker():
    ref = RefModel(mmio_ranges=REF_MMIO_RANGES)
    ref.load_image(assemble(PROGRAM))
    return Checker(ref)


def _copy_with(event, field, transform):
    fields = {spec.name: getattr(event, spec.name) for spec in event.FIELDS}
    fields[field] = transform(fields[field])
    return type(event)(core_id=event.core_id, order_tag=event.order_tag,
                       **fields)


def test_clean_stream_passes(clean_stream):
    checker = _fresh_checker()
    for event in clean_stream:
        assert checker.process(event) is None
    assert checker.finished == 0


@given(choice=st.integers(0, len(_CHECKED_FIELDS) - 1),
       pick=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_any_checked_field_corruption_detected(clean_stream, choice, pick):
    cls, field, transform = _CHECKED_FIELDS[choice]
    candidates = [i for i, e in enumerate(clean_stream)
                  if isinstance(e, cls) and not e.is_nde()
                  and not (isinstance(e, EV.InstrCommit)
                           and not e.flags & EV.FLAG_RF_WEN)]
    if not candidates:
        return
    index = candidates[pick % len(candidates)]
    corrupted = list(clean_stream)
    corrupted[index] = _copy_with(corrupted[index], field, transform)
    checker = _fresh_checker()
    mismatch = None
    for event in corrupted:
        mismatch = checker.process(event)
        if mismatch is not None:
            break
    assert mismatch is not None, (cls.__name__, field, index)
    # Detection is at (or after, for snapshot checks) the corrupted slot.
    assert mismatch.slot >= 0


def test_unchecked_csr_corruption_not_flagged(clean_stream):
    """Masked CSRs (mip/sip) may differ freely — never a false positive."""
    mip_index = CSR.CHECKED_CSRS.index(CSR.MIP)
    corrupted = []
    for event in clean_stream:
        if isinstance(event, EV.CsrState):
            csrs = list(event.csrs)
            csrs[mip_index] ^= 0x80
            event = EV.CsrState(core_id=event.core_id,
                                order_tag=event.order_tag, csrs=tuple(csrs))
        corrupted.append(event)
    checker = _fresh_checker()
    for event in corrupted:
        assert checker.process(event) is None
    assert checker.finished == 0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_random_event_drop_never_causes_protocol_error_for_checks(
        clean_stream, seed):
    """Dropping a pure check event silently weakens coverage but must not
    corrupt the checker's slot machinery."""
    rng = random.Random(seed)
    droppable = [i for i, e in enumerate(clean_stream)
                 if not isinstance(e, (EV.InstrCommit, EV.ArchException,
                                       EV.ArchInterrupt, EV.TrapFinish,
                                       EV.LrScEvent))]
    index = rng.choice(droppable)
    stream = clean_stream[:index] + clean_stream[index + 1:]
    checker = _fresh_checker()
    for event in stream:
        assert checker.process(event) is None
    assert checker.finished == 0
