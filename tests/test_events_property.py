"""Property-based tests on event encoding and differencing."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.events as EV
from repro.comm.fusion.differencing import Completer, Differencer
from repro.events import VerificationEvent, all_event_classes


def _field_strategy(spec):
    bits = 8 * struct.calcsize("<" + spec.code)
    value = st.integers(min_value=0, max_value=(1 << bits) - 1)
    if spec.count == 1:
        return value
    return st.tuples(*([value] * spec.count))


def _event_strategy(cls):
    fields = {spec.name: _field_strategy(spec) for spec in cls.FIELDS}
    return st.fixed_dictionaries(fields).map(
        lambda kw: cls(core_id=0, order_tag=0, **kw))


_any_event = st.one_of([
    _event_strategy(cls) for cls in all_event_classes()
])


@given(_any_event)
@settings(max_examples=300, deadline=None)
def test_encode_decode_roundtrip(event):
    decoded = VerificationEvent.decode(event.encode())
    assert decoded == event


@given(_any_event)
@settings(max_examples=200, deadline=None)
def test_units_roundtrip(event):
    rebuilt = type(event).from_units(event.to_units())
    assert rebuilt._flatten() == event._flatten()


@given(st.lists(_event_strategy(EV.CsrState), min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_differencing_chain_roundtrip(events):
    """Diff then complete reproduces the original event stream exactly."""
    differ = Differencer()
    completer = Completer()
    for event in events:
        item = differ.encode(event)
        restored = completer.complete(item)
        assert restored._flatten() == event._flatten()


@given(st.lists(st.one_of(_event_strategy(EV.IntRegState),
                          _event_strategy(EV.CsrState),
                          _event_strategy(EV.VecCsrState)),
                min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_differencing_mixed_types_roundtrip(events):
    differ = Differencer()
    completer = Completer()
    for event in events:
        restored = completer.complete(differ.encode(event))
        assert type(restored) is type(event)
        assert restored._flatten() == event._flatten()


@given(st.lists(_event_strategy(EV.CsrState), min_size=2, max_size=6))
@settings(max_examples=60, deadline=None)
def test_differencing_never_grows_payload(events):
    differ = Differencer()
    for event in events:
        item = differ.encode(event)
        assert len(item.payload) <= event.payload_size()


@given(_event_strategy(EV.IntRegState))
@settings(max_examples=50, deadline=None)
def test_identical_successor_diffs_to_bitmap_only(event):
    differ = Differencer()
    differ.encode(event)
    repeat = EV.IntRegState(core_id=0, order_tag=1, regs=tuple(event.regs))
    item = differ.encode(repeat)
    # All units unchanged: payload is just the (all-zero) bitmap.
    assert len(item.payload) == (EV.IntRegState.unit_count() + 7) // 8
