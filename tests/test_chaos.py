"""Process-chaos tests: the supervised executor under real failure.

Every test here injects genuine process-level failure — SIGKILLed
workers, hung workers with their watchdog defeated, simulated OOM —
through the deterministic :mod:`repro.toolkit.chaos` harness, and pins
the recovered-or-reported contract:

* transient faults recover with reports **value-identical** to a
  fault-free run (the supervisor is invisible when it wins),
* permanent faults end **explicitly reported** — quarantined by the
  executor, ``SliceExecutionError`` from the slicer, a CRASH line in a
  service report — never silently lost, never misattributed to a DUT
  mismatch.

The chaos matrix at the bottom covers {kill, hang, poison} x
{fuzz campaign, sliced run, service submission}.

All tests fork worker pools and kill them on purpose, so they carry the
``chaos`` marker; CI runs them in a separate, non-gating lane
(``pytest -m chaos``).
"""

import asyncio
import threading
import time

import pytest

from repro.core import CONFIG_BNSD
from repro.core.summary import RunSummary
from repro.dut import NUTSHELL, XIANGSHAN_DEFAULT
from repro.parallel import (
    CampaignExecutor,
    JobSpec,
    SliceExecutionError,
    SupervisionPolicy,
    register_runner,
    sliced_run,
)
from repro.parallel.executor import JobTimeout, _attempt_with_timeout
from repro.service import (
    CampaignService,
    InProcessClient,
    ServiceStore,
    build_submission,
)
from repro.service.render import render_fuzz
from repro.toolkit import POISON, ChaosExecutor, ChaosFault, ChaosPlan
from repro.toolkit.chaos import chaos_specs
from repro.workloads import build
from repro.workloads.fuzz import fuzz_specs

pytestmark = [pytest.mark.chaos, pytest.mark.campaign]


# ----------------------------------------------------------------------
# Tiny deterministic job kinds (registered at import time so fork()ed
# pool workers inherit them).
# ----------------------------------------------------------------------
@register_runner("chaos-base")
def _run_base(params):
    return RunSummary(passed=True, exit_code=0, cycles=10,
                      instructions=5 + params.get("index", 0))


def _base_specs(count):
    return [JobSpec(kind="chaos-base", label=f"job {i}",
                    params={"index": i}) for i in range(count)]


#: Fast supervision for tests: tiny backoff, short parent grace.
def _policy(**overrides):
    defaults = dict(backoff_base_s=0.01, backoff_cap_s=0.05,
                    parent_grace_s=1.0)
    defaults.update(overrides)
    return SupervisionPolicy(**defaults)


def _summaries(campaign):
    return [job.summary for job in campaign.jobs]


# ----------------------------------------------------------------------
# Plan mechanics (no pool involved)
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_seeded_plan_is_reproducible(self, tmp_path):
        one = ChaosPlan.seeded(7, jobs=50, rate=0.3,
                               scratch_dir=str(tmp_path))
        two = ChaosPlan.seeded(7, jobs=50, rate=0.3,
                               scratch_dir=str(tmp_path))
        assert one.faults == two.faults
        assert one.faults  # 50 jobs at 30%: statistically certain
        different = ChaosPlan.seeded(8, jobs=50, rate=0.3,
                                     scratch_dir=str(tmp_path))
        assert different.faults != one.faults

    def test_fault_validation_is_loud(self):
        with pytest.raises(ValueError):
            ChaosFault(kind="meteor")
        with pytest.raises(ValueError):
            ChaosFault(kind="kill", times=0)

    def test_wrap_preserves_labels_order_and_clean_specs(self, tmp_path):
        plan = ChaosPlan({1: ChaosFault("oom")},
                         scratch_dir=str(tmp_path))
        specs = _base_specs(3)
        wrapped = list(chaos_specs(specs, plan))
        assert [spec.label for spec in wrapped] == \
            [spec.label for spec in specs]
        assert wrapped[0] is specs[0]  # unfaulted specs pass through
        assert wrapped[2] is specs[2]
        assert wrapped[1].kind == "chaos"
        assert wrapped[1].params["inner_kind"] == "chaos-base"

    def test_reset_forgets_attempt_counters(self, tmp_path):
        plan = ChaosPlan({0: ChaosFault("oom")},
                         scratch_dir=str(tmp_path))
        with open(plan.token(0), "w") as handle:
            handle.write("3")
        plan.reset()
        import os
        assert not os.path.exists(plan.token(0))


# ----------------------------------------------------------------------
# Supervisor units: one failure mode at a time
# ----------------------------------------------------------------------
class TestKill:
    def test_transient_kill_recovers_value_identically(self, tmp_path):
        clean = CampaignExecutor(workers=2, retries=1,
                                 supervision=_policy())
        reference = clean.run(_base_specs(4))
        plan = ChaosPlan({1: ChaosFault("kill", times=1)},
                         scratch_dir=str(tmp_path))
        chaotic = ChaosExecutor(plan, workers=2, retries=1,
                                supervision=_policy())
        campaign = chaotic.run(_base_specs(4))
        assert all(job.ok for job in campaign.jobs)
        assert _summaries(campaign) == _summaries(reference)
        assert campaign.stats.pool_restarts >= 1
        assert campaign.stats.requeues >= 1
        assert campaign.stats.poison_quarantined == 0

    def test_poison_job_is_quarantined_and_reported(self, tmp_path):
        plan = ChaosPlan({2: ChaosFault("kill", times=POISON)},
                         scratch_dir=str(tmp_path))
        executor = ChaosExecutor(
            plan, workers=2, retries=1,
            supervision=_policy(poison_threshold=2))
        campaign = executor.run(_base_specs(4))
        poisoned = campaign.jobs[2]
        assert poisoned.verdict() == "CRASH"
        assert poisoned.quarantined and poisoned.crashed
        assert poisoned.attempts == 2
        assert "poison job" in poisoned.error
        assert campaign.quarantined == [poisoned]
        assert campaign.stats.poison_quarantined == 1
        assert campaign.stats.jobs_crashed == 1
        # the render names the quarantined job explicitly
        assert "quarantined: job 2 (broke the pool 2x)" \
            in campaign.render()

    def test_healthy_jobs_are_never_misattributed(self, tmp_path):
        """Satellite: a pool break must charge only the breaking job —
        every other job recovers ok, uncharged."""
        plan = ChaosPlan({0: ChaosFault("kill", times=POISON)},
                         scratch_dir=str(tmp_path))
        clean = CampaignExecutor(workers=2, retries=1,
                                 supervision=_policy())
        reference = clean.run(_base_specs(6))
        executor = ChaosExecutor(
            plan, workers=2, retries=1,
            supervision=_policy(poison_threshold=2))
        campaign = executor.run(_base_specs(6))
        survivors = [job for job in campaign.jobs if job.index != 0]
        assert all(job.ok and not job.crashed and not job.timed_out
                   for job in survivors)
        assert [job.summary for job in survivors] == \
            [job.summary for job in reference.jobs if job.index != 0]

    def test_supervision_rollup_line(self, tmp_path):
        plan = ChaosPlan({1: ChaosFault("kill", times=1)},
                         scratch_dir=str(tmp_path))
        executor = ChaosExecutor(plan, workers=2, retries=1,
                                 supervision=_policy())
        campaign = executor.run(_base_specs(3))
        rollup = campaign.stats.rollup()
        assert "supervision:" in rollup
        assert "pool restart(s)" in rollup


class TestOom:
    def test_oom_is_an_ordinary_error_no_pool_restart(self, tmp_path):
        """MemoryError in a runner is survivable in-process: the normal
        retry/ERROR path handles it and the pool must stay up."""
        plan = ChaosPlan({1: ChaosFault("oom", times=POISON)},
                         scratch_dir=str(tmp_path))
        executor = ChaosExecutor(plan, workers=2, retries=0,
                                 supervision=_policy())
        campaign = executor.run(_base_specs(3))
        assert campaign.jobs[1].verdict() == "ERROR"
        assert not campaign.jobs[1].crashed
        assert "MemoryError" in campaign.jobs[1].error
        assert campaign.stats.pool_restarts == 0
        assert campaign.jobs[0].ok and campaign.jobs[2].ok

    def test_transient_oom_recovers_via_worker_retry(self, tmp_path):
        plan = ChaosPlan({0: ChaosFault("oom", times=1)},
                         scratch_dir=str(tmp_path))
        executor = ChaosExecutor(plan, workers=2, retries=1,
                                 supervision=_policy())
        campaign = executor.run(_base_specs(2))
        assert all(job.ok for job in campaign.jobs)
        assert campaign.stats.pool_restarts == 0
        assert campaign.jobs[0].attempts == 2


class TestHang:
    def test_hung_worker_is_killed_and_job_retried(self, tmp_path):
        plan = ChaosPlan(
            {1: ChaosFault("hang", times=1, hang_s=30.0)},
            scratch_dir=str(tmp_path))
        executor = ChaosExecutor(
            plan, workers=2, job_timeout=0.5, retries=1,
            supervision=_policy(parent_grace_s=0.5))
        campaign = executor.run(_base_specs(3))
        assert all(job.ok for job in campaign.jobs)
        assert campaign.stats.pool_restarts >= 1

    def test_hang_exhaustion_is_timeout_not_crash(self, tmp_path):
        plan = ChaosPlan(
            {1: ChaosFault("hang", times=POISON, hang_s=30.0)},
            scratch_dir=str(tmp_path))
        executor = ChaosExecutor(
            plan, workers=2, job_timeout=0.25, retries=0,
            supervision=_policy(parent_grace_s=0.5))
        campaign = executor.run(_base_specs(3))
        hung = campaign.jobs[1]
        assert hung.verdict() == "TIMEOUT"
        assert hung.timed_out and not hung.crashed
        assert "parent-side budget" in hung.error
        assert campaign.jobs[0].ok and campaign.jobs[2].ok


class TestDeterminism:
    def test_backoff_is_seeded_and_reproducible(self, tmp_path):
        """Same plan, same policy seed: the supervision telemetry —
        including the jittered backoff total — is bit-identical across
        runs.  max_inflight_per_worker=0 forces a one-deep window so
        every pool break is unambiguous (deterministic backoff keys)."""
        policy = _policy(poison_threshold=2, max_inflight_per_worker=0)

        def run(tag):
            plan = ChaosPlan({1: ChaosFault("kill", times=POISON)},
                             scratch_dir=str(tmp_path / tag))
            executor = ChaosExecutor(plan, workers=2, retries=1,
                                     supervision=policy)
            return executor.run(_base_specs(3))

        one, two = run("one"), run("two")
        assert one.stats.backoff_s == two.stats.backoff_s > 0
        assert one.stats.requeues == two.stats.requeues
        assert one.stats.pool_restarts == two.stats.pool_restarts
        assert [j.verdict() for j in one.jobs] == \
            [j.verdict() for j in two.jobs]

    def test_inflight_window_is_bounded(self):
        executor = CampaignExecutor(
            workers=2, supervision=_policy(max_inflight_per_worker=2))
        campaign = executor.run(_base_specs(12))
        assert 1 <= campaign.stats.max_inflight <= 4


# ----------------------------------------------------------------------
# Watchdog fallback (satellite: timeouts without SIGALRM)
# ----------------------------------------------------------------------
class TestWatchdogFallback:
    """Off the main thread SIGALRM is unusable; the watchdog-thread
    fallback must enforce the same budget."""

    def _run_in_thread(self, runner, params, timeout):
        box = {}

        def target():
            try:
                box["result"] = _attempt_with_timeout(runner, params,
                                                      timeout)
            except BaseException as exc:  # noqa: E722 - captured below
                box["error"] = exc

        thread = threading.Thread(target=target)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        return box

    def test_watchdog_raises_jobtimeout_off_main_thread(self):
        box = self._run_in_thread(
            lambda params: time.sleep(10), {}, timeout=0.2)
        assert isinstance(box.get("error"), JobTimeout)

    def test_watchdog_passes_results_through(self):
        box = self._run_in_thread(
            lambda params: params["x"] + 1, {"x": 41}, timeout=5.0)
        assert box.get("result") == 42


# ----------------------------------------------------------------------
# The chaos matrix: {kill, hang, poison} x {fuzz, sliced run, service}
# ----------------------------------------------------------------------
FUZZ_SEEDS = range(4)
FUZZ_LEN = 20


def _fuzz_reference():
    executor = CampaignExecutor(workers=2, retries=1,
                                supervision=_policy())
    campaign = executor.run(fuzz_specs(FUZZ_SEEDS, length=FUZZ_LEN,
                                       dut_config=XIANGSHAN_DEFAULT,
                                       diff_config=CONFIG_BNSD))
    return render_fuzz(campaign, 0, len(FUZZ_SEEDS))


def _fuzz_under_chaos(plan, **executor_kwargs):
    executor_kwargs.setdefault("workers", 2)
    executor_kwargs.setdefault("retries", 1)
    executor_kwargs.setdefault("supervision", _policy())
    executor = ChaosExecutor(plan, **executor_kwargs)
    campaign = executor.run(fuzz_specs(FUZZ_SEEDS, length=FUZZ_LEN,
                                       dut_config=XIANGSHAN_DEFAULT,
                                       diff_config=CONFIG_BNSD))
    return campaign, render_fuzz(campaign, 0, len(FUZZ_SEEDS))


class TestMatrixFuzz:
    def test_kill_report_byte_identical(self, tmp_path):
        reference = _fuzz_reference()
        plan = ChaosPlan({1: ChaosFault("kill", times=1)},
                         scratch_dir=str(tmp_path))
        campaign, report = _fuzz_under_chaos(plan)
        assert report == reference
        assert campaign.stats.pool_restarts >= 1

    def test_hang_report_byte_identical(self, tmp_path):
        reference = _fuzz_reference()
        plan = ChaosPlan(
            {2: ChaosFault("hang", times=1, hang_s=30.0)},
            scratch_dir=str(tmp_path))
        campaign, report = _fuzz_under_chaos(
            plan, job_timeout=2.0,
            supervision=_policy(parent_grace_s=1.0))
        assert report == reference
        assert campaign.stats.pool_restarts >= 1

    def test_poison_quarantined_survivors_identical(self, tmp_path):
        reference = _fuzz_reference()
        plan = ChaosPlan({1: ChaosFault("kill", times=POISON)},
                         scratch_dir=str(tmp_path))
        campaign, report = _fuzz_under_chaos(
            plan, supervision=_policy(poison_threshold=2))
        ref_lines = reference.splitlines()
        got_lines = report.splitlines()
        # survivors' per-seed lines are value-identical
        assert got_lines[0] == ref_lines[0]
        assert "seed      1: CRASH" in got_lines[1]
        assert got_lines[3] == "seed      2: ok  (114 instr)"
        # and the failure is explicitly reported, never silent
        assert "3/4 passed" in report
        assert "1 poison job(s) quarantined: seed 1" in report
        assert len(campaign.jobs) == 4  # nothing lost


class TestMatrixSliced:
    WORKLOAD = build("memory_churn", array_kb=8, passes=1)
    MAX = 4500

    def _sliced(self, **kwargs):
        return sliced_run(NUTSHELL, CONFIG_BNSD, self.WORKLOAD.image,
                          max_cycles=self.MAX, slices=3, seed=2025,
                          uart_input=self.WORKLOAD.uart_input, **kwargs)

    def test_kill_stitches_byte_identically(self, tmp_path):
        reference = self._sliced(workers=2, retries=1,
                                 supervision=_policy())
        plan = ChaosPlan({1: ChaosFault("kill", times=1)},
                         scratch_dir=str(tmp_path))
        chaotic = self._sliced(workers=2, retries=1,
                               supervision=_policy(),
                               spec_wrapper=plan.wrap)
        assert chaotic.summary == reference.summary
        assert chaotic.stats.counters == reference.stats.counters
        assert chaotic.campaign.stats.pool_restarts >= 1

    def test_hang_stitches_byte_identically(self, tmp_path):
        reference = self._sliced(workers=2, retries=1,
                                 supervision=_policy())
        plan = ChaosPlan(
            {2: ChaosFault("hang", times=1, hang_s=30.0)},
            scratch_dir=str(tmp_path))
        chaotic = self._sliced(
            workers=2, retries=1, job_timeout=5.0,
            supervision=_policy(parent_grace_s=1.0),
            spec_wrapper=plan.wrap)
        assert chaotic.summary == reference.summary
        assert chaotic.stats.counters == reference.stats.counters

    def test_poison_slice_is_reported_not_lost(self, tmp_path):
        plan = ChaosPlan({0: ChaosFault("kill", times=POISON)},
                         scratch_dir=str(tmp_path))
        with pytest.raises(SliceExecutionError, match="poison job"):
            self._sliced(workers=2, retries=1,
                         supervision=_policy(poison_threshold=2),
                         spec_wrapper=plan.wrap)


class TestMatrixService:
    PARAMS = {"seeds": 2, "length": 25}

    def _reference_report(self, path):
        async def scenario():
            with ServiceStore(path) as store:
                service = CampaignService(store, workers=1)
                client = InProcessClient(service)
                await service.start()
                reply = await client.submit("fuzz", self.PARAMS)
                assert await client.wait(reply["campaign"]) == "done"
                report = (await client.results(
                    reply["campaign"]))["report"]
                await service.stop()
                return report

        return asyncio.run(scenario())

    def _chaotic_report(self, path, plan, policy):
        def factory(submission):
            return ChaosExecutor(
                plan, workers=2, retries=1, supervision=policy,
                collect_metrics=True,
                short_circuit=submission.short_circuit)

        async def scenario():
            with ServiceStore(path) as store:
                service = CampaignService(store,
                                          executor_factory=factory)
                client = InProcessClient(service)
                await service.start()
                reply = await client.submit("fuzz", self.PARAMS)
                state = await client.wait(reply["campaign"])
                report = (await client.results(
                    reply["campaign"]))["report"]
                health = await service.health()
                await service.stop()
                return state, report, health

        return asyncio.run(scenario())

    def test_kill_submission_report_identical(self, tmp_path):
        reference = self._reference_report(str(tmp_path / "ref.db"))
        plan = ChaosPlan({0: ChaosFault("kill", times=1)},
                         scratch_dir=str(tmp_path / "scratch"))
        state, report, health = self._chaotic_report(
            str(tmp_path / "chaos.db"), plan, _policy())
        assert state == "done"
        assert report == reference
        assert health["supervision"]["pool_restarts"] >= 1

    def test_hang_submission_report_identical(self, tmp_path):
        reference = self._reference_report(str(tmp_path / "ref.db"))
        plan = ChaosPlan(
            {1: ChaosFault("hang", times=1, hang_s=30.0)},
            scratch_dir=str(tmp_path / "scratch"))

        def factory(submission):
            return ChaosExecutor(
                plan, workers=2, retries=1, job_timeout=2.0,
                supervision=_policy(parent_grace_s=1.0),
                collect_metrics=True,
                short_circuit=submission.short_circuit)

        async def scenario():
            with ServiceStore(str(tmp_path / "chaos.db")) as store:
                service = CampaignService(store,
                                          executor_factory=factory)
                client = InProcessClient(service)
                await service.start()
                reply = await client.submit("fuzz", self.PARAMS)
                state = await client.wait(reply["campaign"])
                report = (await client.results(
                    reply["campaign"]))["report"]
                await service.stop()
                return state, report

        state, report = asyncio.run(scenario())
        assert state == "done"
        assert report == reference

    def test_poison_submission_reports_quarantine(self, tmp_path):
        plan = ChaosPlan({1: ChaosFault("kill", times=POISON)},
                         scratch_dir=str(tmp_path / "scratch"))
        state, report, health = self._chaotic_report(
            str(tmp_path / "chaos.db"), plan,
            _policy(poison_threshold=2))
        assert state == "done"  # recovered-or-reported: reported
        assert "CRASH" in report
        assert "1 poison job(s) quarantined: seed 1" in report
        assert health["supervision"]["poison_quarantined"] == 1

    def test_crashed_and_quarantined_survive_store_roundtrip(
            self, tmp_path):
        """The store must carry the crash flags: a reloaded result
        renders the identical report (CRASH line, quarantine footer)."""
        plan = ChaosPlan({1: ChaosFault("kill", times=POISON)},
                         scratch_dir=str(tmp_path / "scratch"))
        path = str(tmp_path / "chaos.db")
        _, report, _ = self._chaotic_report(
            path, plan, _policy(poison_threshold=2))
        with ServiceStore(path) as store:
            campaign_id = store.campaigns()[0].id
            result = store.load_result(campaign_id)
            assert result.jobs[1].crashed
            assert result.jobs[1].quarantined
            assert result.jobs[1].verdict() == "CRASH"
            submission = build_submission("fuzz", self.PARAMS)
            rendered = render_fuzz(result, self.PARAMS.get("start", 0),
                                   submission.params["seeds"])
            assert rendered == report
