"""Fault-injection campaign: every Table 6 bug class is detectable.

Each fault is paired with a workload that keeps the corrupted state
architecturally live, then injected into a full co-simulation; the checker
must flag a mismatch and (where applicable) Replay must localize it.
"""

import pytest

from repro.core import CONFIG_BNSD, CoSimulation
from repro.dut import (
    CATEGORY_EXCEPTION,
    CATEGORY_MEMORY,
    CATEGORY_VECTOR,
    FAULT_CATALOGUE,
    XIANGSHAN_DEFAULT,
    fault_by_name,
)
from repro.isa import assemble
from repro.workloads import build

#: Integer accumulator loop: every register is live.
INT_LOOP = """
_start:
    li sp, 0x80100000
    li t0, 150
    li t1, 0
loop:
    add t1, t1, t0
    sd t1, -8(sp)
    ld t2, -8(sp)
    add t1, t1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""

#: Trap-heavy loop for exception/interrupt faults.
TRAP_LOOP = """
_start:
    li sp, 0x80100000
    la t0, handler
    csrw mtvec, t0
    li s0, 0
    li s1, 40
loop:
    ecall
    blt s0, s1, loop
    li a0, 0
    ebreak
.align 3
handler:
    addi s0, s0, 1
    csrr t1, mepc
    addi t1, t1, 4
    csrw mepc, t1
    mret
"""

#: A single trap at the very end of a compute loop: nth=1 trap faults
#: corrupt it and the corruption survives to the final fusion window.
TRAP_END = """
_start:
    li sp, 0x80100000
    la t0, handler
    csrw mtvec, t0
    li t0, 60
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    ecall
    li a0, 0
    ebreak
.align 3
handler:
    csrr t2, mepc
    addi t2, t2, 4
    csrw mepc, t2
    mret
"""

#: Two back-to-back traps at the end of a compute loop: the second trap's
#: corrupted state survives to the final fusion window (exercising the
#: nth-occurrence fault of PR #3778).
TRAP_TAIL = """
_start:
    li sp, 0x80100000
    la t0, handler
    csrw mtvec, t0
    li t0, 60
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    ecall
    ecall
    li a0, 0
    ebreak
.align 3
handler:
    csrr t2, mepc
    addi t2, t2, 4
    csrw mepc, t2
    mret
"""

#: Cache-missing memory walk for hierarchy faults.
MEM_WALK = """
_start:
    li s0, 0x80200000
    li t0, 0
loop:
    add t1, s0, t0
    sd t0, 0(t1)
    ld t2, 0(t1)
    bne t2, t0, bad
    addi t0, t0, 64
    li t3, 40960
    blt t0, t3, loop
    li a0, 0
    ebreak
bad:
    li a0, 1
    ebreak
"""

#: Vector + FP loop whose results feed the integer accumulator losslessly.
VEC_LOOP = """
_start:
    li sp, 0x80100000
    li s0, 0x80200000
    li t0, 4
    vsetvli t1, t0, e64
    li s1, 60
    li t4, 1
    sd t4, 0(s0)
    sd t4, 8(s0)
    sd t4, 16(s0)
    sd t4, 24(s0)
loop:
    vle64.v v1, (s0)
    vadd.vv v2, v1, v1
    vse64.v v2, (s0)
    fmv.d.x f1, t4
    fmv.x.d t5, f1
    add t4, t4, t5
    ld t6, 0(s0)
    add t4, t4, t6
    andi t4, t4, 0xFFF
    ori t4, t4, 1
    sd t4, 0(s0)
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    ebreak
"""

#: Which workload exercises each fault, and a trigger point.
_CAMPAIGN = {
    # exception/interrupt category
    "wrong_virtual_address": (TRAP_END, 60),
    "misaligned_wakeup": (INT_LOOP, 200),
    "improper_interrupt_response": (None, 0),  # uses timer workload
    "wrong_exception_cause": (TRAP_END, 60),
    "double_trap_state": (TRAP_TAIL, 60),
    "interrupt_tval_leak": (TRAP_END, 60),
    # memory hierarchy category
    "store_queue_mismatch": (INT_LOOP, 200),
    "cache_line_corruption": (MEM_WALK, 100),
    "icache_refill_corruption": (INT_LOOP, 40),
    "tlb_wrong_permission": (None, 0),  # uses virtual_memory workload
    "sbuffer_lost_bytes": (INT_LOOP, 200),
    "amo_wrong_old_value": (None, 0),  # uses atomics workload
    # vector/control category
    "wrong_vstart_update": (VEC_LOOP, 60),
    "vs_dirty_wrong": (INT_LOOP, 200),
    "vector_lane_corrupt": (VEC_LOOP, 60),
    "vector_exception_track": (VEC_LOOP, 60),
    "fp_flag_corrupt": (INT_LOOP, 200),
    "fp_writeback_corrupt": (VEC_LOOP, 60),
    "control_flow_wdata": (INT_LOOP, 200),
}


def _image_for(name: str):
    source, trigger = _CAMPAIGN[name]
    if source is not None:
        return assemble(source), trigger, 80_000
    if name == "improper_interrupt_response":
        wl = build("timer_interrupt", interrupts=5)
        return wl.image, 100, wl.max_cycles
    if name == "tlb_wrong_permission":
        wl = build("virtual_memory", rounds=8)
        return wl.image, 30, wl.max_cycles
    wl = build("atomics", iterations=60)
    return wl.image, 100, wl.max_cycles


def _run(name: str, config=CONFIG_BNSD):
    image, trigger, budget = _image_for(name)
    cosim = CoSimulation(XIANGSHAN_DEFAULT, config, image)
    fault_by_name(name).install(cosim.dut.cores[0], trigger)
    return cosim.run(max_cycles=budget)


@pytest.mark.parametrize("spec", FAULT_CATALOGUE, ids=lambda s: s.name)
def test_fault_detected(spec):
    result = _run(spec.name)
    assert result.mismatch is not None, f"{spec.name} went undetected"


@pytest.mark.parametrize("spec", FAULT_CATALOGUE, ids=lambda s: s.name)
def test_fault_produces_debug_report(spec):
    result = _run(spec.name)
    assert result.debug_report is not None
    assert result.debug_report.replayed_events >= 0
    rendered = result.debug_report.render()
    assert "component" in rendered


def test_campaign_covers_all_three_categories():
    categories = {spec.category for spec in FAULT_CATALOGUE}
    assert categories == {CATEGORY_EXCEPTION, CATEGORY_MEMORY,
                          CATEGORY_VECTOR}


def test_component_localization_sample():
    """For a probe-level fault the mismatching event directly implicates
    the right microarchitectural component (behavioural semantics)."""
    result = _run("cache_line_corruption")
    assert result.mismatch.component == "dcache"


def test_detection_speed_advantage():
    """Modeled detection time: DiffTest-H on Palladium finds the same bug
    orders of magnitude faster than Verilator (Figure 14 shape)."""
    from repro.comm import PALLADIUM, VERILATOR_16T

    result = _run("store_queue_mismatch")
    assert result.mismatch is not None
    fast = result.breakdown(PALLADIUM, XIANGSHAN_DEFAULT.gates_millions, True)
    slow = result.breakdown(VERILATOR_16T, XIANGSHAN_DEFAULT.gates_millions,
                            False)
    assert fast.total_us < slow.total_us / 20
