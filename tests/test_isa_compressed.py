"""Tests for the RV64C compressed-instruction extension."""

import pytest

from repro.isa import ArchState, Bus, Hart, assemble
from repro.isa.compressed import decode_compressed, is_compressed
from repro.isa.const import DRAM_BASE
from repro.isa.decode import IllegalInstruction


def run_src(source: str, steps: int = 5000):
    state = ArchState()
    bus = Bus()
    bus.memory.store_bytes(DRAM_BASE, assemble(source))
    hart = Hart(state, bus)
    for _ in range(steps):
        result = hart.step()
        if result.trap_finish is not None:
            return state, result
    raise AssertionError(f"did not finish; pc={state.pc:#x}")


def expand(source: str):
    image = assemble(source)
    assert len(image) == 2
    return decode_compressed(int.from_bytes(image, "little"))


class TestDetection:
    def test_compressed_quadrants(self):
        assert is_compressed(0x0001)  # c.nop
        assert is_compressed(0x9002)  # c.ebreak
        assert not is_compressed(0x00000013)  # addi

    def test_all_zero_halfword_is_illegal(self):
        with pytest.raises(IllegalInstruction):
            decode_compressed(0)


class TestExpansion:
    def test_c_addi(self):
        d = expand("c.addi t0, -7")
        assert (d.name, d.rd, d.rs1, d.imm) == ("addi", 5, 5, -7)
        assert d.is_rvc and d.length == 2

    def test_c_li(self):
        d = expand("c.li a0, 31")
        assert (d.name, d.rd, d.rs1, d.imm) == ("addi", 10, 0, 31)

    def test_c_lui(self):
        d = expand("c.lui a2, 5")
        assert d.name == "lui" and d.imm == 5 << 12

    def test_c_addi16sp(self):
        d = expand("c.addi16sp sp, -64")
        assert (d.name, d.rd, d.rs1, d.imm) == ("addi", 2, 2, -64)

    def test_c_addi4spn(self):
        # Assemble via raw encoding: c.addi4spn a0, sp, 16.
        image = assemble("c.addi a0, 0")  # placeholder for length check
        del image
        hword = (0 << 13) | (0 << 11) | (1 << 7) | (2 << 2) | 0x0
        d = decode_compressed(hword)
        assert d.name == "addi" and d.rs1 == 2 and d.rd == 10
        assert d.imm == 64  # uimm[9:6] = 1 -> 64

    def test_c_mv_and_add(self):
        d = expand("c.mv a0, a1")
        assert (d.name, d.rd, d.rs1, d.rs2) == ("add", 10, 0, 11)
        d = expand("c.add a0, a1")
        assert (d.name, d.rd, d.rs1, d.rs2) == ("add", 10, 10, 11)

    def test_c_jr_jalr(self):
        d = expand("c.jr ra")
        assert (d.name, d.rd, d.rs1) == ("jalr", 0, 1)
        d = expand("c.jalr a0")
        assert (d.name, d.rd, d.rs1) == ("jalr", 1, 10)

    def test_c_arith_prime(self):
        d = expand("c.sub a0, a1")
        assert (d.name, d.rd, d.rs1, d.rs2) == ("sub", 10, 10, 11)
        d = expand("c.addw a4, a5")
        assert (d.name, d.rd) == ("addw", 14)

    def test_c_shifts(self):
        assert expand("c.slli t0, 33").imm == 33
        assert expand("c.srli a0, 60").imm == 60
        assert expand("c.srai a0, 1").name == "srai"

    def test_c_loads_stores(self):
        d = expand("c.ld a0, 24(a1)")
        assert (d.name, d.rd, d.rs1, d.imm) == ("ld", 10, 11, 24)
        d = expand("c.sw a2, 12(a3)")
        assert (d.name, d.rs2, d.rs1, d.imm) == ("sw", 12, 13, 12)
        d = expand("c.ldsp t0, 40(sp)")
        assert (d.name, d.rd, d.rs1, d.imm) == ("ld", 5, 2, 40)
        d = expand("c.sdsp ra, 8(sp)")
        assert (d.name, d.rs2, d.rs1, d.imm) == ("sd", 1, 2, 8)

    def test_c_fld_fsd(self):
        d = expand("c.fld f8, 16(a0)")
        assert (d.name, d.rd, d.rs1, d.imm) == ("fld", 8, 10, 16)
        d = expand("c.fsdsp f9, 24(sp)") if False else expand("c.fsd f9, 24(a0)")
        assert d.name == "fsd"

    def test_c_ebreak(self):
        assert expand("c.ebreak").name == "ebreak"

    def test_prime_register_rejected(self):
        from repro.isa import AssemblerError

        with pytest.raises(AssemblerError, match="x8-x15"):
            assemble("c.sub t0, a1")


class TestExecution:
    def test_equivalence_with_full_width(self):
        compressed, _ = run_src("""
_start:
    li sp, 0x80100000
    c.li a0, 21
    c.li a1, 2
    c.add a0, a1
    c.slli a0, 2
    c.srli a0, 1
    c.sdsp a0, 0(sp)
    c.ldsp a2, 0(sp)
    li a0, 0
    ebreak
""")
        full, _ = run_src("""
_start:
    li sp, 0x80100000
    addi a0, zero, 21
    addi a1, zero, 2
    add a0, a0, a1
    slli a0, a0, 2
    srli a0, a0, 1
    sd a0, 0(sp)
    ld a2, 0(sp)
    li a0, 0
    ebreak
""")
        assert compressed.xregs[11:13] == full.xregs[11:13]

    def test_compressed_loop_with_branches(self):
        state, _ = run_src("""
_start:
    c.li a0, 20
    c.li a1, 0
loop:
    c.add a1, a0
    c.addi a0, -1
    c.bnez a0, loop
    li a0, 0
    ebreak
""")
        assert state.xregs[11] == 210

    def test_c_j_forward(self):
        state, _ = run_src("""
_start:
    c.li a1, 1
    c.j skip
    c.li a1, 31
skip:
    c.addi a1, 1
    li a0, 0
    ebreak
""")
        assert state.xregs[11] == 2  # the skipped c.li never executed

    def test_c_jalr_links_pc_plus_2(self):
        state, _ = run_src("""
_start:
    li sp, 0x80100000
    la a0, fn
    c.jalr a0
    j done
fn:
    mv a1, ra
    jr ra
done:
    li a0, 0
    ebreak
""")
        # ra must point to the instruction AFTER the 2-byte c.jalr.
        assert state.xregs[11] == state.xregs[1]

    def test_mixed_alignment(self):
        """2-byte instructions put 4-byte ones at odd word alignment."""
        state, _ = run_src("""
_start:
    c.nop
    li a1, 0x12345678
    c.addi a1, 1
    li a0, 0
    ebreak
""")
        assert state.xregs[11] == 0x12345679


class TestCosim:
    def test_rvc_workload_all_configs(self):
        from repro.core import CONFIG_BNSD, CONFIG_FIXED, CONFIG_Z, run_cosim
        from repro.dut import XIANGSHAN_DEFAULT
        from repro.workloads import build

        workload = build("rvc_mix", iterations=60)
        for config in (CONFIG_Z, CONFIG_FIXED, CONFIG_BNSD):
            result = run_cosim(XIANGSHAN_DEFAULT, config, workload.image,
                               max_cycles=workload.max_cycles)
            assert result.passed, (config.name, result.mismatch)

    def test_commit_events_flag_rvc(self):
        import repro.events as EV
        from repro.dut import DutSystem, XIANGSHAN_DEFAULT
        from repro.workloads import build

        workload = build("rvc_mix", iterations=10)
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(workload.image)
        rvc_commits = 0
        full_commits = 0
        for _ in range(workload.max_cycles):
            (bundle,) = system.cycle()
            for event in bundle.events:
                if isinstance(event, EV.InstrCommit):
                    if event.flags & EV.FLAG_IS_RVC:
                        rvc_commits += 1
                    else:
                        full_commits += 1
            if system.finished():
                break
        assert rvc_commits > 0 and full_commits > 0
