"""Tests for the workload programs and synthetic streams."""

import pytest

import repro.events as EV
from repro.core import CONFIG_BNSD, run_cosim
from repro.dut import NUTSHELL, XIANGSHAN_DEFAULT
from repro.workloads import (
    KVM_IO,
    LINUX_BOOT,
    PROFILES,
    RVV_TEST,
    SPEC_COMPUTE,
    SyntheticStream,
    available,
    build,
)


class TestPrograms:
    def test_registry_lists_all(self):
        names = available()
        assert "microbench" in names
        assert "linux_boot_like" in names
        assert len(names) >= 11

    @pytest.mark.parametrize("name", available())
    def test_every_workload_passes_cosim(self, name):
        workload = build(name)
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed, f"{name}: {result.mismatch} exit={result.exit_code}"

    def test_workloads_parameterizable(self):
        small = build("microbench", iterations=10)
        large = build("microbench", iterations=100)
        a = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small.image,
                      max_cycles=small.max_cycles)
        b = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, large.image,
                      max_cycles=large.max_cycles)
        assert b.instructions > 3 * a.instructions

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            build("nonexistent")

    def test_mmio_echo_produces_uart_text(self):
        workload = build("mmio_echo", repeats=2)
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.uart_output.count("hello difftest-h") == 2

    def test_timer_interrupt_takes_interrupts(self):
        workload = build("timer_interrupt", interrupts=3)
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed
        assert result.stats.profile.counts.get(
            EV.ArchInterrupt.DESCRIPTOR.event_id, 0) >= 3

    def test_virtual_memory_produces_tlb_events(self):
        workload = build("virtual_memory")
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed
        assert result.stats.profile.counts.get(
            EV.L1TlbFill.DESCRIPTOR.event_id, 0) > 0

    def test_vector_saxpy_produces_vector_events(self):
        workload = build("vector_saxpy", iterations=5)
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed
        counts = result.stats.profile.counts
        assert counts.get(EV.VecWriteback.DESCRIPTOR.event_id, 0) > 0
        assert counts.get(EV.VConfigEvent.DESCRIPTOR.event_id, 0) > 0

    def test_atomics_produce_lrsc_and_amo_events(self):
        workload = build("atomics", iterations=10)
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed
        counts = result.stats.profile.counts
        assert counts.get(EV.AtomicEvent.DESCRIPTOR.event_id, 0) > 0
        assert counts.get(EV.LrScEvent.DESCRIPTOR.event_id, 0) > 0

    def test_linux_boot_covers_many_event_types(self):
        workload = build("linux_boot_like")
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed
        active_types = sum(1 for n in result.stats.profile.counts.values()
                           if n > 0)
        assert active_types >= 15

    def test_nutshell_runs_microbench(self):
        workload = build("microbench", iterations=30)
        result = run_cosim(NUTSHELL, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles * 3)
        assert result.passed


class TestSyntheticStreams:
    def test_deterministic(self):
        a = list(SyntheticStream(LINUX_BOOT, seed=3).cycles(50))
        b = list(SyntheticStream(LINUX_BOOT, seed=3).cycles(50))
        assert a == b

    def test_seed_changes_stream(self):
        a = list(SyntheticStream(LINUX_BOOT, seed=3).cycles(50))
        b = list(SyntheticStream(LINUX_BOOT, seed=4).cycles(50))
        assert a != b

    def test_tags_monotonic(self):
        stream = SyntheticStream(LINUX_BOOT)
        tags = []
        for cycle in stream.cycles(200):
            tags.extend(e.order_tag for e in cycle
                        if isinstance(e, EV.InstrCommit))
        assert tags == sorted(tags)

    def test_profile_rates_shape(self):
        def rate(profile, cls, cycles=4000):
            stream = SyntheticStream(profile, seed=1)
            count = 0
            instructions = 0
            for cycle in stream.cycles(cycles):
                for event in cycle:
                    if isinstance(event, cls):
                        count += 1
                    if isinstance(event, EV.InstrCommit):
                        instructions += 1
            return count / max(instructions, 1)

        # KVM profile is far more MMIO/interrupt heavy than SPEC.
        assert rate(KVM_IO, EV.ArchInterrupt) > 5 * rate(
            SPEC_COMPUTE, EV.ArchInterrupt)
        # Only the RVV profile produces vector traffic.
        assert rate(RVV_TEST, EV.VecWriteback) > 0
        assert rate(SPEC_COMPUTE, EV.VecWriteback) == 0

    def test_all_profiles_generate(self):
        for profile in PROFILES:
            events = [e for cycle in
                      SyntheticStream(profile, seed=2).cycles(100)
                      for e in cycle]
            assert events

    def test_stream_feeds_fuser_and_packer(self):
        from repro.comm.fusion import SquashFuser
        from repro.comm.packing import BatchPacker

        stream = SyntheticStream(LINUX_BOOT, seed=9)
        fuser = SquashFuser(window=32, differencing=True)
        packer = BatchPacker()
        transfers = 0
        for cycle in stream.cycles(2000):
            for transfer in packer.pack_cycle(fuser.on_cycle(cycle)):
                transfers += 1
        for transfer in packer.pack_cycle(fuser.flush()) + packer.flush():
            transfers += 1
        assert transfers > 0
        assert fuser.stats.fusion_ratio > 2
