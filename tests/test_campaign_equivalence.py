"""Serial vs parallel equivalence of real campaigns.

A campaign must be a pure function of its job list: running the same
fuzz seeds or the same fault injections under ``workers=1`` and
``workers=4`` has to produce identical mismatch sets, identical
counters, and a byte-identical aggregated report.  Also hosts the
regression tests for the two invariants the campaign work exposed:
the Channel backpressure boundary and ``Checker.quiescent``.
"""

import pytest

from repro.comm import Channel
from repro.comm.packing.base import Transfer
from repro.core import CONFIG_BNSD, CoSimulation
from repro.dut import XIANGSHAN_DEFAULT
from repro.isa import assemble
from repro.parallel import FaultCase, fault_campaign
from repro.workloads import fuzz_campaign

from tests.test_faults_campaign import INT_LOOP, MEM_WALK


@pytest.mark.campaign
class TestFuzzEquivalence:
    def test_small_fuzz_campaign(self):
        seeds = range(100, 106)
        serial = fuzz_campaign(seeds, length=40, workers=1)
        parallel = fuzz_campaign(seeds, length=40, workers=4)
        assert serial.render() == parallel.render()
        assert serial.aggregate_counters() == parallel.aggregate_counters()
        mismatches = lambda c: [job.summary.mismatch for job in c.jobs]  # noqa: E731
        assert mismatches(serial) == mismatches(parallel)
        assert serial.passed and parallel.passed


@pytest.mark.campaign
class TestFaultEquivalence:
    def _cases(self):
        int_image = assemble(INT_LOOP)
        mem_image = assemble(MEM_WALK)
        return [
            FaultCase("store_queue_mismatch", int_image, trigger=200),
            FaultCase("cache_line_corruption", mem_image, trigger=100),
            FaultCase("control_flow_wdata", int_image, trigger=200),
        ]

    def test_three_fault_campaign_identical(self):
        serial = fault_campaign(self._cases(), XIANGSHAN_DEFAULT,
                                CONFIG_BNSD, workers=1)
        parallel = fault_campaign(self._cases(), XIANGSHAN_DEFAULT,
                                  CONFIG_BNSD, workers=4)
        assert serial.render() == parallel.render()
        assert serial.aggregate_counters() == parallel.aggregate_counters()
        for sjob, pjob in zip(serial.jobs, parallel.jobs):
            assert sjob.summary.mismatch == pjob.summary.mismatch
            assert sjob.summary.mismatch is not None, sjob.label
            assert sjob.summary.debug_report_text == \
                pjob.summary.debug_report_text

    def test_fault_campaign_matches_direct_run(self):
        """A campaign job reproduces the in-process run bit-for-bit."""
        case = self._cases()[0]
        campaign = fault_campaign([case], XIANGSHAN_DEFAULT, CONFIG_BNSD,
                                  workers=2)
        from repro.dut import fault_by_name
        cosim = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD, case.image)
        fault_by_name(case.fault).install(cosim.dut.cores[0], case.trigger)
        direct = cosim.run(max_cycles=case.max_cycles).summarize()
        assert campaign.jobs[0].summary == direct


class TestChannelBackpressureBoundary:
    """The send queue applies stall pressure *at* depth, not past it."""

    def _fill(self, channel, count):
        for i in range(count):
            channel.send(Transfer(bytes([i])))

    def test_below_depth_no_pressure(self):
        channel = Channel(nonblocking=True, queue_depth=4)
        self._fill(channel, 3)
        assert channel.backpressure_events == 0

    def test_exactly_at_depth_registers_stall(self):
        channel = Channel(nonblocking=True, queue_depth=4)
        self._fill(channel, 4)
        assert channel.backpressure_events == 1

    def test_every_send_beyond_depth_counts(self):
        channel = Channel(nonblocking=True, queue_depth=2)
        self._fill(channel, 5)  # occupancies 1..5 -> stalls at 2,3,4,5
        assert channel.backpressure_events == 4

    def test_draining_resets_pressure_accounting(self):
        channel = Channel(nonblocking=True, queue_depth=2)
        self._fill(channel, 2)
        assert channel.backpressure_events == 1
        channel.receive()
        channel.send(Transfer(b"x"))  # occupancy back to 2 -> stalls again
        assert channel.backpressure_events == 2

    def test_blocking_mode_never_counts_backpressure(self):
        channel = Channel(nonblocking=False, queue_depth=2)
        self._fill(channel, 10)
        assert channel.backpressure_events == 0
        assert channel.max_occupancy == 10  # occupancy still tracked


class TestCheckerQuiescent:
    def _run_and_sample(self, source: str):
        """Drive a co-simulation, sampling quiescence after each drain."""
        cosim = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                             assemble(source))
        result = cosim.run(max_cycles=80_000)
        return cosim, result

    def test_quiescent_after_clean_run(self):
        cosim, result = self._run_and_sample(INT_LOOP)
        assert result.passed
        for checker in cosim.checkers:
            assert checker.quiescent

    def test_fresh_checker_is_quiescent(self):
        from repro.core.checker import Checker
        from repro.core.framework import REF_MMIO_RANGES
        from repro.ref import RefModel
        checker = Checker(RefModel(mmio_ranges=REF_MMIO_RANGES))
        assert checker.quiescent

    def test_buffered_check_breaks_quiescence(self):
        import repro.events as EV
        from repro.core.checker import Checker
        from repro.core.framework import REF_MMIO_RANGES
        from repro.ref import RefModel
        checker = Checker(RefModel(mmio_ranges=REF_MMIO_RANGES))
        # A check event tagged ahead of ref_slot is buffered, not compared.
        checker.process(EV.IntWriteback(order_tag=5, addr=1, data=0))
        assert not checker.quiescent

    def test_pending_consumer_breaks_quiescence(self):
        import repro.events as EV
        from repro.core.checker import Checker
        from repro.core.framework import REF_MMIO_RANGES
        from repro.ref import RefModel
        checker = Checker(RefModel(mmio_ranges=REF_MMIO_RANGES))
        checker.process(EV.ArchInterrupt(order_tag=3, cause=7))
        assert not checker.quiescent

    def test_checkpoints_only_at_quiescent_points(self):
        """The framework's checkpoint gate is exactly `quiescent`."""
        cosim, result = self._run_and_sample(MEM_WALK)
        assert result.passed
        assert cosim.stats.checkpoints > 0  # gate did open during the run
