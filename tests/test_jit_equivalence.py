"""JIT-vs-interpreter equivalence for the compiled-simulation tier.

The contract of :mod:`repro.isa.jit` is *invisibility*: a run with the
trace cache enabled must be byte-identical — same counters, same rendered
report, same mismatch, same UART output — to the interpreted run, for
every packer, for sliced execution, and for fault campaigns.  Every test
here compares a JIT-on run against a freshly executed JIT-off reference
(never against golden files), in the style of
``test_codec_equivalence.py``: the interpreted path is the behavioural
reference, the compiled path must match it bit for bit.

Coverage map:

* seeded random instruction streams per opcode family (ALU reg/imm,
  loads/stores, branches, traps, mixed) through the full co-simulation;
* per-step lockstep of the compiled REF steppers against the interpreter
  (state, results and compensation-log reverts);
* self-modifying code: page write-epoch eviction, recompilation, and
  end-to-end identity for a program that patches its own hot loop;
* trap boundaries: blocks never contain trap-capable instructions and
  ecall-heavy runs stay identical;
* snapshot/restore and sliced-run byte-identity with the JIT enabled;
* fault-injection runs forced to the interpreted DUT path.
"""

import random

import pytest

from repro.core import (
    CONFIG_B,
    CONFIG_BNSD,
    CONFIG_FIXED,
    CONFIG_Z,
    CoSimulation,
    run_cosim,
)
from repro.dut import NUTSHELL, XIANGSHAN_DEFAULT, fault_by_name
from repro.dut.snapshotting import restore_snapshot, take_snapshot
from repro.isa.assembler import assemble
from repro.isa.const import DRAM_BASE
from repro.isa.csr import MINSTRET
from repro.isa.execute import Hart
from repro.isa.jit import TraceCache
from repro.isa.memory import Bus, PhysicalMemory
from repro.isa.state import ArchState
from repro.obs import ObsContext
from repro.parallel import epoch_for, sliced_run
from repro.ref.journal import CompensationLog
from repro.toolkit import render_report
from repro.workloads import build

SCRATCH = 0x8020_0000

_ALU_RR = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt",
           "sltu", "addw", "subw", "mul", "mulh", "mulhu", "div", "divu",
           "rem", "remu")
_ALU_RI = ("addi", "andi", "ori", "xori", "slti", "sltiu", "addiw")
_SHIFTS = ("slli", "srli", "srai")
_LOADS = ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu")
_STORES = ("sb", "sh", "sw", "sd")
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_REGS = ("t0", "t1", "t2", "t3", "t4", "t5", "t6",
         "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
         "s2", "s3", "s4", "s5")
_ALIGN = {"lb": 1, "lbu": 1, "sb": 1, "lh": 2, "lhu": 2, "sh": 2,
          "lw": 4, "lwu": 4, "sw": 4, "ld": 8, "sd": 8}

FAMILIES = ("alu_reg", "alu_imm", "load_store", "branch", "traps", "mixed")


def family_source(family: str, seed: int, length: int = 40,
                  loops: int = 8) -> str:
    """A seeded random instruction stream of one opcode family, wrapped
    in an outer loop so entry PCs get hot enough to compile.

    Register conventions: ``s0`` holds the scratch base, the loop
    counter lives in memory at ``2040(s0)`` (above every generated
    load/store offset), ``s1`` is trap-handler scratch.
    """
    rng = random.Random(seed)
    body = []
    label_count = 0

    def reg():
        return rng.choice(_REGS)

    def gen_alu_reg():
        body.append(f"    {rng.choice(_ALU_RR)} {reg()}, {reg()}, {reg()}")

    def gen_alu_imm():
        if rng.random() < 0.3:
            body.append(f"    {rng.choice(_SHIFTS)} {reg()}, {reg()}, "
                        f"{rng.randint(0, 63)}")
        elif rng.random() < 0.15:
            body.append(f"    lui {reg()}, {rng.randint(0, 0xFFFFF)}")
        else:
            body.append(f"    {rng.choice(_ALU_RI)} {reg()}, {reg()}, "
                        f"{rng.randint(-2048, 2047)}")

    def gen_load():
        op = rng.choice(_LOADS)
        offset = rng.randrange(0, 2032, _ALIGN[op])
        body.append(f"    {op} {reg()}, {offset}(s0)")

    def gen_store():
        op = rng.choice(_STORES)
        offset = rng.randrange(0, 2032, _ALIGN[op])
        body.append(f"    {op} {reg()}, {offset}(s0)")

    def gen_branch():
        nonlocal label_count
        label = f"jq_{seed}_{label_count}"
        label_count += 1
        body.append(f"    {rng.choice(_BRANCHES)} {reg()}, {reg()}, {label}")
        body.append(f"    addi {reg()}, {reg()}, 1")
        body.append(f"{label}:")

    def gen_trap():
        body.append("    ecall")

    gens = {
        "alu_reg": (gen_alu_reg,),
        "alu_imm": (gen_alu_imm,),
        "load_store": (gen_load, gen_store),
        "branch": (gen_branch, gen_alu_imm),
        "traps": (gen_trap, gen_alu_reg, gen_alu_imm),
        "mixed": (gen_alu_reg, gen_alu_imm, gen_load, gen_store,
                  gen_branch),
    }[family]
    for _ in range(length):
        rng.choice(gens)()

    lines = [
        "_start:",
        "    li sp, 0x80100000",
        f"    li s0, {SCRATCH}",
        "    la t0, trap_handler",
        "    csrw mtvec, t0",
    ]
    for offset in range(0, 64, 8):
        lines += [f"    li t1, {rng.getrandbits(32)}",
                  f"    sd t1, {offset}(s0)"]
    for name in _REGS[:10]:
        lines.append(f"    li {name}, {rng.getrandbits(16)}")
    lines += [f"    li s1, {loops}", "    sd s1, 2040(s0)", "outer:"]
    lines += body
    lines += [
        "    ld s1, 2040(s0)",
        "    addi s1, s1, -1",
        "    sd s1, 2040(s0)",
        "    bnez s1, outer",
        "    li a0, 0",
        "    ebreak",
        ".align 3",
        "trap_handler:",
        "    csrr s1, mepc",
        "    addi s1, s1, 4",
        "    csrw mepc, s1",
        "    mret",
    ]
    return "\n".join(lines)


def run_pair(image, max_cycles, config=CONFIG_BNSD, dut=NUTSHELL,
             fault=None, trigger=0, warmup=2):
    """One JIT-off and one JIT-on run of the same image; returns the
    (off, on) results and the JIT-on CoSimulation for stats access."""
    results = {}
    on_sim = None
    for label, cfg in (("off", config),
                       ("on", config.with_(jit=True, jit_warmup=warmup))):
        cosim = CoSimulation(dut, cfg, image, seed=2025)
        if fault is not None:
            fault_by_name(fault).install(cosim.dut.cores[0], trigger)
        results[label] = cosim.run(max_cycles)
        if label == "on":
            on_sim = cosim
    return results["off"], results["on"], on_sim


def assert_identical(off, on):
    """The byte-identity contract between a JIT-off and JIT-on run."""
    assert render_report(off.stats) == render_report(on.stats)
    assert off.summarize() == on.summarize()
    assert off.exit_code == on.exit_code
    assert off.uart_output == on.uart_output
    assert (off.mismatch is None) == (on.mismatch is None)


# ----------------------------------------------------------------------
# Seeded per-opcode-family streams through the full co-simulation
# ----------------------------------------------------------------------

class TestOpcodeFamilyStreams:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", [11, 23])
    def test_family_stream_identity(self, family, seed):
        image = assemble(family_source(family, seed))
        off, on, _ = run_pair(image, max_cycles=60_000)
        assert off.exit_code == 0, family
        assert_identical(off, on)

    def test_jit_engages_on_straightline_families(self):
        image = assemble(family_source("alu_reg", seed=7, loops=12))
        off, on, sim = run_pair(image, max_cycles=60_000)
        assert_identical(off, on)
        dut_cache = sim.dut.cores[0].jit
        ref_cache = sim.refs[0].hart.jit
        assert dut_cache.stats.blocks_compiled > 0
        assert dut_cache.stats.hits > 0
        assert ref_cache.stats.steps > 0

    def test_obs_counters_surface_jit_activity(self):
        workload = build("memory_churn", array_kb=8, passes=1)
        on = run_cosim(NUTSHELL, CONFIG_BNSD.with_(jit=True, jit_warmup=2),
                       workload.image, max_cycles=4500, obs=ObsContext())
        off = run_cosim(NUTSHELL, CONFIG_BNSD, workload.image,
                        max_cycles=4500, obs=ObsContext())
        assert on.metrics.value("jit.blocks_compiled") > 0
        assert on.metrics.value("jit.hits") > 0
        assert on.metrics.value("jit.steps") > 0
        # A JIT-off run snapshots identically to one without the tier.
        assert "jit.hits" not in off.metrics.metrics


# ----------------------------------------------------------------------
# Per-step lockstep of the compiled REF steppers
# ----------------------------------------------------------------------

def _journaled_hart(image: bytes, jit: bool) -> Hart:
    bus = Bus(PhysicalMemory())
    bus.memory.store_bytes(DRAM_BASE, image)
    hart = Hart(ArchState(0, DRAM_BASE), bus)
    journal = CompensationLog(hart.state, hart.bus.memory)
    hart.state.attach_journal(journal)
    hart.bus.memory.journal = journal
    if jit:
        hart.jit = TraceCache(hart.bus, "ref", warmup=1)
    return hart


def _state_key(hart: Hart):
    return (hart.state.pc, tuple(hart.state.xregs), hart.instret,
            hart.state.csr.peek(MINSTRET))


class TestRefStepperLockstep:
    @pytest.mark.parametrize("family",
                             ["alu_reg", "alu_imm", "load_store", "mixed"])
    def test_state_and_results_match_every_step(self, family):
        image = assemble(family_source(family, seed=5, loops=6))
        interp = _journaled_hart(image, jit=False)
        jit = _journaled_hart(image, jit=True)
        for _ in range(1500):
            a = interp.step(mmio_policy="skip")
            b = jit.step(mmio_policy="skip")
            assert a.pc == b.pc and a.next_pc == b.next_pc
            assert a.name == b.name and a.instr == b.instr
            assert tuple(a.reg_writes) == tuple(b.reg_writes)
            assert list(a.mem_ops) == list(b.mem_ops)
            assert _state_key(interp) == _state_key(jit)
        assert jit.jit.stats.steps > 0

    def test_journal_revert_matches_interpreter(self):
        image = assemble(family_source("mixed", seed=17, loops=6))
        interp = _journaled_hart(image, jit=False)
        jit = _journaled_hart(image, jit=True)
        for _ in range(300):  # get both past warmup, identically
            interp.step(mmio_policy="skip")
            jit.step(mmio_policy="skip")
        assert _state_key(interp) == _state_key(jit)
        marks = (interp.state.journal.checkpoint(),
                 jit.state.journal.checkpoint())
        snap = _state_key(interp)
        for _ in range(400):
            interp.step(mmio_policy="skip")
            jit.step(mmio_policy="skip")
        interp.state.journal.revert_to(marks[0])
        jit.state.journal.revert_to(marks[1])
        # The journal restores architectural state (pc, xregs, MINSTRET,
        # memory) but not the hart-level ``instret`` tally — drop it from
        # the revert comparison, matching interpreter behaviour.
        assert _state_key(interp)[:2] + _state_key(interp)[3:] == \
            snap[:2] + snap[3:]
        assert _state_key(jit) == _state_key(interp)
        mem_a = interp.bus.memory.load_bytes(SCRATCH, 2048)
        mem_b = jit.bus.memory.load_bytes(SCRATCH, 2048)
        assert mem_a == mem_b


# ----------------------------------------------------------------------
# Self-modifying code: eviction and recompilation
# ----------------------------------------------------------------------

def _word_of(instr: str) -> int:
    return int.from_bytes(assemble(instr)[:4], "little")


class TestSelfModifyingCode:
    def test_page_epoch_bumps_only_on_code_pages(self):
        memory = PhysicalMemory()
        page = DRAM_BASE >> 12
        epoch = memory.register_code_page(page)
        memory.store_bytes(DRAM_BASE + 0x100, b"\xAA" * 4)
        assert memory.code_epoch(page) != epoch
        epoch = memory.code_epoch(page)
        memory.store_bytes(DRAM_BASE + 0x2000, b"\xBB" * 4)  # other page
        assert memory.code_epoch(page) == epoch

    def test_replace_pages_invalidates_all_code_pages(self):
        memory = PhysicalMemory()
        memory.store_bytes(DRAM_BASE, b"\x00" * 64)
        epoch = memory.register_code_page(DRAM_BASE >> 12)
        memory.replace_pages(memory._pages)
        assert memory.code_epoch(DRAM_BASE >> 12) != epoch

    def test_store_into_compiled_block_evicts_and_recompiles(self):
        source = "\n".join([
            "_start:",
            "    li t0, 2000",
            "    li t1, 0",
            "loop:",
            "    addi t1, t1, 1",
            "    addi t0, t0, -1",
            "    bnez t0, loop",
            "    j _start",
        ])
        image = assemble(source)
        site = DRAM_BASE + image.index(
            _word_of("addi t1, t1, 1").to_bytes(4, "little"))
        patched = _word_of("addi t1, t1, 3").to_bytes(4, "little")

        def run_to(hart, cache, instret):
            while hart.instret < instret:
                results = (cache.run_block(hart, hart.state.pc, 1 << 30)
                           if cache is not None else None)
                if results is None:
                    hart.step()

        def bare(image):
            bus = Bus(PhysicalMemory())
            bus.memory.store_bytes(DRAM_BASE, image)
            return Hart(ArchState(0, DRAM_BASE), bus)

        jit = bare(image)
        cache = TraceCache(jit.bus, "dut", warmup=2)
        interp = bare(image)
        run_to(jit, cache, 600)
        run_to(interp, None, jit.instret)
        assert cache.stats.hits > 0 and cache.stats.evictions == 0
        assert _state_key_bare(jit) == _state_key_bare(interp)
        # Patch the hot loop in both memories at the same instruction
        # boundary; the compiled block must be evicted, not replayed.
        jit.bus.memory.store_bytes(site, patched)
        interp.bus.memory.store_bytes(site, patched)
        compiled_before = cache.stats.blocks_compiled
        run_to(jit, cache, 3000)
        run_to(interp, None, jit.instret)
        assert cache.stats.evictions >= 1
        assert cache.stats.blocks_compiled > compiled_before
        assert _state_key_bare(jit) == _state_key_bare(interp)

    def test_self_patching_program_end_to_end_identity(self):
        patched = _word_of("addi t1, t1, 2")
        source = "\n".join([
            "_start:",
            "    li t0, 60",
            "    li t1, 0",
            "    la t2, site",
            f"    li t3, {patched}",
            "    li t5, 30",
            "loop:",
            "site:",
            "    addi t1, t1, 1",
            "    addi t0, t0, -1",
            "    beq t0, t5, do_patch",
            "resume:",
            "    bnez t0, loop",
            "    li a0, 0",
            "    ebreak",
            "do_patch:",
            "    sw t3, 0(t2)",
            "    j resume",
        ])
        image = assemble(source)
        off, on, sim = run_pair(image, max_cycles=10_000)
        assert_identical(off, on)
        evictions = (sim.dut.cores[0].jit.stats.evictions
                     + sim.refs[0].hart.jit.stats.evictions)
        assert evictions >= 1


def _state_key_bare(hart: Hart):
    return (hart.state.pc, tuple(hart.state.xregs), hart.instret,
            hart.state.csr.peek(MINSTRET))


# ----------------------------------------------------------------------
# Trap boundaries
# ----------------------------------------------------------------------

class TestTrapBoundaries:
    def test_trace_never_crosses_trap_capable_instructions(self):
        source = "\n".join([
            "_start:",
            "    addi t0, t0, 1",
            "    addi t1, t1, 2",
            "    ecall",
            "    addi t2, t2, 3",
            "    j _start",
        ])
        image = assemble(source)
        bus = Bus(PhysicalMemory())
        bus.memory.store_bytes(DRAM_BASE, image)
        cache = TraceCache(bus, "dut", warmup=1)
        trace = cache._trace(DRAM_BASE)
        assert trace is not None
        names = [d.name for _, _, d in trace]
        assert "ecall" not in names
        assert names == ["addi", "addi"]  # stops before the trap

    def test_ecall_heavy_stream_identity(self):
        image = assemble(family_source("traps", seed=3, loops=6))
        off, on, _ = run_pair(image, max_cycles=60_000)
        assert off.exit_code == 0
        assert_identical(off, on)


# ----------------------------------------------------------------------
# Snapshot/restore and sliced-run byte-identity
# ----------------------------------------------------------------------

class TestSnapshotAndSlicing:
    def test_dut_snapshot_restore_replays_identically(self):
        """Restoring a mid-run snapshot re-validates stale blocks via the
        epoch bump and the re-run is cycle-identical."""
        workload = build("memory_churn", array_kb=8, passes=1)
        config = CONFIG_BNSD.with_(jit=True, jit_warmup=2)
        cosim = CoSimulation(NUTSHELL, config, workload.image, seed=2025,
                             uart_input=workload.uart_input)
        dut = cosim.dut
        for _ in range(600):
            dut.cycle()
        snap = take_snapshot(dut)
        first = [b for _ in range(300) for b in dut.cycle()]
        restore_snapshot(dut, snap)
        second = [b for _ in range(300) for b in dut.cycle()]
        assert [b.events for b in first] == [b.events for b in second]
        assert [b.committed for b in first] == [b.committed for b in second]

    def test_sliced_run_identity_with_jit(self):
        workload = build("memory_churn", array_kb=8, passes=1)
        max_cycles = 4500
        config = CONFIG_BNSD.with_(jit=True, jit_warmup=4)
        serial = CoSimulation(
            NUTSHELL, config.with_(slice_epoch_cycles=epoch_for(max_cycles, 3)),
            workload.image, seed=2025,
            uart_input=workload.uart_input).run(max_cycles)
        sliced = sliced_run(NUTSHELL, config, workload.image,
                            max_cycles=max_cycles, slices=3, seed=2025,
                            uart_input=workload.uart_input)
        assert sliced.passed
        assert render_report(serial.stats) == render_report(sliced.stats)
        assert serial.summarize() == sliced.summary

    @pytest.mark.parametrize("config", [CONFIG_Z, CONFIG_B, CONFIG_FIXED,
                                        CONFIG_BNSD],
                             ids=lambda c: c.name)
    def test_packer_schemes_identity(self, config):
        workload = build("memory_churn", array_kb=8, passes=1)
        off, on, _ = run_pair(workload.image, max_cycles=4500,
                              config=config)
        assert_identical(off, on)


# ----------------------------------------------------------------------
# Fault injection is pinned to the interpreted path
# ----------------------------------------------------------------------

class TestFaultInjection:
    CASES = [("control_flow_wdata", 500), ("store_queue_mismatch", 300),
             ("misaligned_wakeup", 800)]

    @pytest.mark.parametrize("fault,trigger", CASES,
                             ids=[name for name, _ in CASES])
    def test_faulted_run_identity_and_forced_interpretation(self, fault,
                                                            trigger):
        workload = build("memory_churn", array_kb=8, passes=1)
        off, on, sim = run_pair(workload.image, max_cycles=4500,
                                fault=fault, trigger=trigger)
        assert off.mismatch is not None
        assert on.mismatch is not None
        assert off.summarize().mismatch == on.summarize().mismatch
        assert off.summarize().debug_report_text == \
            on.summarize().debug_report_text
        assert_identical(off, on)
        # The armed fault latch pins the DUT core to the interpreter:
        # the compiled tier must never execute a faulty core's stream.
        dut_cache = sim.dut.cores[0].jit
        assert dut_cache.stats.hits == 0
        assert dut_cache.stats.steps == 0

    def test_xiangshan_fault_identity(self):
        workload = build("memory_churn", array_kb=8, passes=1)
        off, on, _ = run_pair(workload.image, max_cycles=6000,
                              dut=XIANGSHAN_DEFAULT,
                              fault="control_flow_wdata", trigger=400)
        assert_identical(off, on)
