"""Tests for Sv39 address translation."""

import pytest

from repro.isa import PhysicalMemory, make_pte, make_satp, translate
from repro.isa.const import (
    ACCESS_FETCH,
    ACCESS_LOAD,
    ACCESS_STORE,
    MSTATUS_MXR,
    MSTATUS_SUM,
    PRIV_M,
    PRIV_S,
    PRIV_U,
    PTE_A,
    PTE_D,
    PTE_R,
    PTE_U,
    PTE_V,
    PTE_W,
    PTE_X,
)
from repro.isa.mmu import PageFault, raw_walk, translation_active

ROOT = 0x8100_0000
L1 = 0x8100_1000
L0 = 0x8100_2000
SATP = make_satp(ROOT)

RWX = PTE_V | PTE_R | PTE_W | PTE_X | PTE_A | PTE_D


def build_tables(mem: PhysicalMemory, vaddr: int, paddr: int,
                 flags: int = RWX, level: int = 0) -> None:
    """Map one page (or superpage) for ``vaddr``."""
    vpn2 = (vaddr >> 30) & 0x1FF
    vpn1 = (vaddr >> 21) & 0x1FF
    vpn0 = (vaddr >> 12) & 0x1FF
    if level == 2:
        mem.store(ROOT + vpn2 * 8, 8, make_pte(paddr >> 12, flags))
        return
    mem.store(ROOT + vpn2 * 8, 8, make_pte(L1 >> 12, PTE_V))
    if level == 1:
        mem.store(L1 + vpn1 * 8, 8, make_pte(paddr >> 12, flags))
        return
    mem.store(L1 + vpn1 * 8, 8, make_pte(L0 >> 12, PTE_V))
    mem.store(L0 + vpn0 * 8, 8, make_pte(paddr >> 12, flags))


class TestBasicTranslation:
    def test_bare_mode_is_identity(self):
        mem = PhysicalMemory()
        t = translate(mem, 0, 0x1234, ACCESS_LOAD, PRIV_S)
        assert t.paddr == 0x1234

    def test_machine_mode_bypasses(self):
        assert not translation_active(SATP, PRIV_M)
        assert translation_active(SATP, PRIV_S)

    def test_4k_page(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000)
        t = translate(mem, SATP, 0x4000_0123, ACCESS_LOAD, PRIV_S)
        assert t.paddr == 0x8020_0123
        assert t.level == 0

    def test_2m_superpage(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000, level=1)
        t = translate(mem, SATP, 0x4008_1123, ACCESS_LOAD, PRIV_S)
        assert t.paddr == 0x8028_1123
        assert t.level == 1

    def test_1g_superpage(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x8000_0000, 0x8000_0000, level=2)
        t = translate(mem, SATP, 0x8012_3456, ACCESS_FETCH, PRIV_S)
        assert t.paddr == 0x8012_3456
        assert t.level == 2

    def test_misaligned_superpage_faults(self):
        mem = PhysicalMemory()
        # level-1 leaf whose ppn is not 2M-aligned
        build_tables(mem, 0x4000_0000, 0x8020_1000, level=1)
        with pytest.raises(PageFault):
            translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S)

    def test_sign_extension_check(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000)
        with pytest.raises(PageFault):
            translate(mem, SATP, 0x0000_8000_4000_0000, ACCESS_LOAD, PRIV_S)


class TestPermissions:
    def _mem(self, flags):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000, flags=flags)
        return mem

    def test_invalid_pte_faults(self):
        mem = self._mem(0)
        with pytest.raises(PageFault) as info:
            translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S)
        assert info.value.cause == 13  # load page fault

    def test_write_to_readonly_faults(self):
        mem = self._mem(PTE_V | PTE_R | PTE_A | PTE_D)
        translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S)
        with pytest.raises(PageFault) as info:
            translate(mem, SATP, 0x4000_0000, ACCESS_STORE, PRIV_S)
        assert info.value.cause == 15  # store page fault

    def test_fetch_needs_x(self):
        mem = self._mem(PTE_V | PTE_R | PTE_A)
        with pytest.raises(PageFault) as info:
            translate(mem, SATP, 0x4000_0000, ACCESS_FETCH, PRIV_S)
        assert info.value.cause == 12

    def test_user_page_blocks_s_load_without_sum(self):
        mem = self._mem(RWX | PTE_U)
        with pytest.raises(PageFault):
            translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S)
        # With SUM set, S-mode may read user pages.
        t = translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S,
                      mstatus=MSTATUS_SUM)
        assert t.paddr == 0x8020_0000

    def test_s_fetch_from_user_page_always_faults(self):
        mem = self._mem(RWX | PTE_U)
        with pytest.raises(PageFault):
            translate(mem, SATP, 0x4000_0000, ACCESS_FETCH, PRIV_S,
                      mstatus=MSTATUS_SUM)

    def test_user_needs_u_bit(self):
        mem = self._mem(RWX)
        with pytest.raises(PageFault):
            translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_U)

    def test_mxr_makes_x_readable(self):
        mem = self._mem(PTE_V | PTE_X | PTE_A)
        with pytest.raises(PageFault):
            translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S)
        t = translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S,
                      mstatus=MSTATUS_MXR)
        assert t.paddr == 0x8020_0000

    def test_w_without_r_is_reserved(self):
        mem = self._mem(PTE_V | PTE_W | PTE_A | PTE_D)
        with pytest.raises(PageFault):
            translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S)


class TestAccessedDirty:
    def test_hardware_sets_a_on_load(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000,
                     flags=PTE_V | PTE_R | PTE_W)
        t = translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S)
        assert t.perm & PTE_A
        pte = mem.load(t.pte_addr, 8)
        assert pte & PTE_A and not pte & PTE_D

    def test_hardware_sets_d_on_store(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000,
                     flags=PTE_V | PTE_R | PTE_W)
        t = translate(mem, SATP, 0x4000_0000, ACCESS_STORE, PRIV_S)
        pte = mem.load(t.pte_addr, 8)
        assert pte & PTE_A and pte & PTE_D

    def test_svade_mode_faults_instead(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000,
                     flags=PTE_V | PTE_R | PTE_W)
        with pytest.raises(PageFault):
            translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S,
                      update_ad=False)


class TestRawWalk:
    def test_matches_translate(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000)
        t = translate(mem, SATP, 0x4000_0000, ACCESS_LOAD, PRIV_S)
        walk = raw_walk(mem, SATP, 0x4000_0000)
        assert walk is not None
        assert walk.ppn == t.ppn

    def test_unmapped_returns_none(self):
        mem = PhysicalMemory()
        assert raw_walk(mem, SATP, 0x5000_0000) is None

    def test_ignores_permissions(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000, flags=PTE_V | PTE_R)
        walk = raw_walk(mem, SATP, 0x4000_0000)
        assert walk is not None

    def test_does_not_set_ad_bits(self):
        mem = PhysicalMemory()
        build_tables(mem, 0x4000_0000, 0x8020_0000, flags=PTE_V | PTE_R)
        walk = raw_walk(mem, SATP, 0x4000_0000)
        assert not mem.load(walk.pte_addr, 8) & PTE_A

    def test_bare_mode_returns_none(self):
        assert raw_walk(PhysicalMemory(), 0, 0x1000) is None
