"""Tests for Squash fusion, order decoupling, and differencing."""

import pytest

import repro.events as EV
from repro.comm.fusion import (
    Completer,
    Differencer,
    OrderCoupledFuser,
    SquashFuser,
)
from repro.comm.packing import ENC_DIFF, ENC_FULL


def commit(tag: int, core: int = 0, skip: bool = False) -> EV.InstrCommit:
    flags = EV.FLAG_RF_WEN | (EV.FLAG_SKIP if skip else 0)
    return EV.InstrCommit(core_id=core, order_tag=tag, pc=0x80000000 + 4 * tag,
                          instr=0x13, wdata=tag, rd=1, flags=flags,
                          fused_count=1)


def decode_items(items):
    completer = Completer()
    return [completer.complete(item) for item in items]


class TestCollapse:
    def test_commits_fold_into_one(self):
        fuser = SquashFuser(window=8, differencing=False)
        out = []
        for tag in range(8):
            out.extend(fuser.on_cycle([commit(tag)]))
        events = decode_items(out)
        fused = [e for e in events if isinstance(e, EV.InstrCommit)]
        assert len(fused) == 1
        assert fused[0].fused_count == 8
        assert fused[0].order_tag == 7
        assert fused[0].pc == 0x80000000 + 4 * 7

    def test_window_flush_triggers_at_limit(self):
        fuser = SquashFuser(window=4, differencing=False)
        emitted = []
        for tag in range(4):
            emitted.extend(fuser.on_cycle([commit(tag)]))
        assert emitted  # flush happened exactly at the window limit
        assert not fuser.flush()

    def test_explicit_flush_emits_partial_window(self):
        fuser = SquashFuser(window=100, differencing=False)
        fuser.on_cycle([commit(0), commit(1)])
        events = decode_items(fuser.flush())
        assert events[-1].fused_count == 2

    def test_original_commit_not_mutated(self):
        fuser = SquashFuser(window=100, differencing=False)
        first = commit(0)
        fuser.on_cycle([first])
        fuser.on_cycle([commit(1)])
        assert first.fused_count == 1
        assert first.order_tag == 0

    def test_per_core_fusion_windows(self):
        fuser = SquashFuser(window=100, differencing=False)
        fuser.on_cycle([commit(0, core=0), commit(0, core=1),
                        commit(1, core=1)])
        events = decode_items(fuser.flush())
        counts = {e.core_id: e.fused_count for e in events
                  if isinstance(e, EV.InstrCommit)}
        assert counts == {0: 1, 1: 2}


class TestOrderDecoupling:
    def test_nde_transmitted_ahead_without_break(self):
        fuser = SquashFuser(window=100, differencing=False)
        out = []
        out.extend(fuser.on_cycle([commit(0)]))
        out.extend(fuser.on_cycle(
            [EV.ArchInterrupt(order_tag=1, pc=0, cause=7)]))
        out.extend(fuser.on_cycle([commit(2)]))
        # Only the interrupt was transmitted so far; fusion continued.
        assert len(out) == 1
        assert decode_items(out)[0].order_tag == 1
        events = decode_items(fuser.flush())
        fused = [e for e in events if isinstance(e, EV.InstrCommit)][0]
        assert fused.fused_count == 2
        assert fuser.stats.fusion_breaks == 0
        assert fuser.stats.nde_sent_ahead == 1

    def test_mmio_commit_sent_ahead(self):
        fuser = SquashFuser(window=100, differencing=False)
        out = fuser.on_cycle([commit(0, skip=True)])
        assert len(out) == 1
        assert decode_items(out)[0].flags & EV.FLAG_SKIP

    def test_flush_emits_fused_commit_last(self):
        fuser = SquashFuser(window=100, differencing=False)
        fuser.on_cycle([
            commit(0),
            EV.DCacheRefill(order_tag=0, addr=0x80200000,
                            data=tuple(range(8))),
            EV.IntRegState(order_tag=0, regs=tuple(range(32))),
        ])
        events = decode_items(fuser.flush())
        assert isinstance(events[-1], EV.InstrCommit)

    def test_keep_latest_snapshot(self):
        fuser = SquashFuser(window=100, differencing=False)
        for tag in range(3):
            fuser.on_cycle([
                commit(tag),
                EV.IntRegState(order_tag=tag, regs=tuple([tag] * 32)),
            ])
        events = decode_items(fuser.flush())
        snapshots = [e for e in events if isinstance(e, EV.IntRegState)]
        assert len(snapshots) == 1
        assert snapshots[0].regs[0] == 2  # the latest one

    def test_accumulate_last_write_per_register(self):
        fuser = SquashFuser(window=100, differencing=False)
        fuser.on_cycle([EV.IntWriteback(order_tag=0, addr=5, data=1)])
        fuser.on_cycle([EV.IntWriteback(order_tag=1, addr=5, data=2)])
        fuser.on_cycle([EV.IntWriteback(order_tag=2, addr=6, data=3)])
        events = decode_items(fuser.flush())
        writes = {(e.addr, e.data) for e in events
                  if isinstance(e, EV.IntWriteback)}
        assert writes == {(5, 2), (6, 3)}

    def test_passthrough_events_all_delivered(self):
        fuser = SquashFuser(window=100, differencing=False)
        refills = [EV.DCacheRefill(order_tag=t, addr=64 * t,
                                   data=tuple(range(8))) for t in range(3)]
        for refill in refills:
            fuser.on_cycle([refill])
        events = decode_items(fuser.flush())
        got = [e for e in events if isinstance(e, EV.DCacheRefill)]
        assert got == refills

    def test_trapfinish_flushes_then_finishes(self):
        fuser = SquashFuser(window=100, differencing=False)
        fuser.on_cycle([commit(0)])
        out = fuser.on_cycle([EV.TrapFinish(order_tag=1, pc=0, code=0,
                                            has_trap=1, cycles=9,
                                            instr_count=1)])
        events = decode_items(out)
        assert isinstance(events[-1], EV.TrapFinish)
        assert any(isinstance(e, EV.InstrCommit) for e in events)

    def test_fusion_ratio_reported(self):
        fuser = SquashFuser(window=100, differencing=False)
        for tag in range(10):
            fuser.on_cycle([commit(tag)])
        fuser.flush()
        assert fuser.stats.fusion_ratio == pytest.approx(10.0)


class TestOrderCoupledBaseline:
    def test_nde_breaks_fusion(self):
        fuser = OrderCoupledFuser(window=100, differencing=False)
        out = []
        out.extend(fuser.on_cycle([commit(0)]))
        out.extend(fuser.on_cycle(
            [EV.ArchInterrupt(order_tag=1, pc=0, cause=7)]))
        out.extend(fuser.on_cycle([commit(2)]))
        events = decode_items(out)
        # The fused commit (count 1) was transmitted BEFORE the NDE.
        kinds = [type(e).__name__ for e in events]
        assert kinds.index("InstrCommit") < kinds.index("ArchInterrupt")
        assert fuser.stats.fusion_breaks == 1

    def test_squash_beats_coupled_under_ndes(self):
        def run(fuser):
            for tag in range(0, 40, 2):
                fuser.on_cycle([commit(tag)])
                fuser.on_cycle([EV.ArchInterrupt(order_tag=tag + 1, pc=0,
                                                 cause=7)])
            fuser.flush()
            return fuser.stats.fusion_ratio

        squash = run(SquashFuser(window=100, differencing=False))
        coupled = run(OrderCoupledFuser(window=100, differencing=False))
        assert squash > coupled


class TestDifferencing:
    def test_first_instance_is_full(self):
        differ = Differencer()
        item = differ.encode(EV.CsrState(csrs=tuple(range(64))))
        assert item.encoding == ENC_FULL

    def test_unchanged_snapshot_shrinks_massively(self):
        differ = Differencer()
        differ.encode(EV.CsrState(order_tag=0, csrs=tuple(range(64))))
        item = differ.encode(EV.CsrState(order_tag=1, csrs=tuple(range(64))))
        assert item.encoding == ENC_DIFF
        assert len(item.payload) == 8  # 64-unit bitmap only
        assert differ.bytes_saved > 0

    def test_partial_change_sends_changed_units_only(self):
        differ = Differencer()
        base = list(range(64))
        differ.encode(EV.CsrState(order_tag=0, csrs=tuple(base)))
        base[3] = 999
        item = differ.encode(EV.CsrState(order_tag=1, csrs=tuple(base)))
        assert len(item.payload) == 8 + 8  # bitmap + one changed u64

    def test_small_events_never_diffed(self):
        differ = Differencer()
        differ.encode(EV.FpCsrState(order_tag=0, fcsr=1, frm=0, fflags=1))
        item = differ.encode(EV.FpCsrState(order_tag=1, fcsr=1, frm=0,
                                           fflags=1))
        assert item.encoding == ENC_FULL

    def test_unprofitable_diff_falls_back_to_full(self):
        differ = Differencer()
        differ.encode(EV.IntRegState(order_tag=0, regs=tuple(range(32))))
        item = differ.encode(EV.IntRegState(
            order_tag=1, regs=tuple(range(100, 132))))  # everything changed
        assert item.encoding == ENC_FULL

    def test_completer_requires_prior_full(self):
        differ = Differencer()
        differ.encode(EV.CsrState(order_tag=0, csrs=tuple(range(64))))
        diffed = differ.encode(EV.CsrState(order_tag=1, csrs=tuple(range(64))))
        with pytest.raises(ValueError, match="no prior full event"):
            Completer().complete(diffed)

    def test_chains_are_per_core(self):
        differ = Differencer()
        completer = Completer()
        a0 = EV.CsrState(core_id=0, order_tag=0, csrs=tuple([1] * 64))
        b0 = EV.CsrState(core_id=1, order_tag=0, csrs=tuple([2] * 64))
        a1 = EV.CsrState(core_id=0, order_tag=1, csrs=tuple([1] * 64))
        for event in (a0, b0, a1):
            restored = completer.complete(differ.encode(event))
            assert restored._flatten() == event._flatten()
            assert restored.core_id == event.core_id
