"""Tests for the verification-event system (Table 1)."""

import pytest

import repro.events as EV
from repro.events import (
    EventCategory,
    FusionRule,
    VerificationEvent,
    aggregate_interface_size,
    all_event_classes,
    event_class,
)


class TestRegistry:
    def test_exactly_32_event_types(self):
        assert len(all_event_classes()) == 32

    def test_event_ids_dense_and_ordered(self):
        ids = [cls.DESCRIPTOR.event_id for cls in all_event_classes()]
        assert ids == list(range(32))

    def test_category_counts_match_table1(self):
        counts = {}
        for cls in all_event_classes():
            category = cls.DESCRIPTOR.category
            counts[category] = counts.get(category, 0) + 1
        assert counts[EventCategory.CONTROL_FLOW] == 5
        assert counts[EventCategory.REGISTER_UPDATE] == 9
        assert counts[EventCategory.MEMORY_ACCESS] == 3
        assert counts[EventCategory.MEMORY_HIERARCHY] == 6
        assert counts[EventCategory.EXTENSION] == 9

    def test_lookup_by_id(self):
        assert event_class(0) is EV.InstrCommit
        assert event_class(31) is EV.LrScEvent

    def test_lookup_unknown_id_raises(self):
        with pytest.raises(KeyError):
            event_class(99)

    def test_names_unique(self):
        names = [cls.__name__ for cls in all_event_classes()]
        assert len(set(names)) == 32

    def test_duplicate_registration_rejected(self):
        from repro.events.base import EventDescriptor, FieldSpec, register_event

        class Dup(VerificationEvent):
            DESCRIPTOR = EventDescriptor(
                event_id=0, name="Dup", category=EventCategory.CONTROL_FLOW,
                fusion_rule=FusionRule.PASS_THROUGH)
            FIELDS = (FieldSpec("x", "B"),)

        with pytest.raises(ValueError, match="duplicate"):
            register_event(Dup)


class TestStructuralSemantics:
    def test_size_range_spans_170x(self):
        sizes = [cls.payload_size() for cls in all_event_classes()]
        assert max(sizes) / min(sizes) >= 150

    def test_smallest_and_largest_types(self):
        smallest = min(all_event_classes(), key=lambda c: c.payload_size())
        largest = max(all_event_classes(), key=lambda c: c.payload_size())
        assert smallest is EV.FpCsrState
        assert largest is EV.VecRegState
        assert largest.payload_size() == 1024

    def test_aggregate_interface_size_same_order_as_paper(self):
        # Section 2.2 reports 11,496 bytes for the original DiffTest; our
        # probe set lands in the same order of magnitude.
        assert 4000 <= aggregate_interface_size() <= 16384

    def test_payload_size_matches_struct(self):
        for cls in all_event_classes():
            assert cls.payload_size() == len(cls().encode_payload())

    def test_wire_size_adds_header(self):
        assert EV.InstrCommit.wire_size() == EV.InstrCommit.payload_size() + 6

    def test_unit_sizes_sum_to_payload(self):
        for cls in all_event_classes():
            assert sum(cls.unit_sizes()) == cls.payload_size()

    def test_unit_count_matches_flatten(self):
        for cls in all_event_classes():
            assert cls.unit_count() == len(cls().to_units())


class TestEncoding:
    def test_payload_roundtrip_default(self):
        for cls in all_event_classes():
            event = cls(core_id=1, order_tag=42)
            decoded = cls.decode_payload(event.encode_payload(), core_id=1,
                                         order_tag=42)
            assert decoded == event

    def test_full_roundtrip_with_header(self):
        event = EV.StoreEvent(core_id=3, order_tag=77, paddr=0x80001000,
                              data=0xDEADBEEF, mask=0xFF)
        decoded = VerificationEvent.decode(event.encode())
        assert isinstance(decoded, EV.StoreEvent)
        assert decoded == event
        assert decoded.core_id == 3
        assert decoded.order_tag == 77

    def test_decode_at_offset(self):
        event = EV.IntWriteback(addr=5, data=123)
        blob = b"\xAA" * 10 + event.encode()
        assert VerificationEvent.decode(blob, 10) == event

    def test_units_roundtrip(self):
        event = EV.CsrState(csrs=tuple(range(EV.CSR_STATE_ENTRIES)))
        rebuilt = EV.CsrState.from_units(event.to_units())
        assert tuple(rebuilt.csrs) == tuple(range(EV.CSR_STATE_ENTRIES))

    def test_array_field_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="expects"):
            EV.IntRegState(regs=(1, 2, 3))

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError, match="unknown fields"):
            EV.InstrCommit(bogus=1)

    def test_equality_considers_tag_and_core(self):
        a = EV.IntWriteback(core_id=0, order_tag=1, addr=3, data=9)
        b = EV.IntWriteback(core_id=0, order_tag=2, addr=3, data=9)
        assert a != b
        assert a == EV.IntWriteback(core_id=0, order_tag=1, addr=3, data=9)

    def test_hashable(self):
        a = EV.LoadEvent(paddr=8, data=1, op_type=8, fu_type=0, mmio=0)
        assert a in {a}

    def test_repr_mentions_class(self):
        assert "InstrCommit" in repr(EV.InstrCommit())


class TestOrderSemantics:
    def test_static_ndes(self):
        assert EV.ArchInterrupt().is_nde()
        assert EV.VirtualInterrupt().is_nde()
        assert EV.LrScEvent().is_nde()

    def test_commit_nde_depends_on_skip_flag(self):
        assert not EV.InstrCommit(flags=0).is_nde()
        assert EV.InstrCommit(flags=EV.FLAG_SKIP).is_nde()

    def test_load_nde_depends_on_mmio(self):
        assert not EV.LoadEvent(mmio=0).is_nde()
        assert EV.LoadEvent(mmio=1).is_nde()

    def test_deterministic_events_not_nde(self):
        assert not EV.ArchException().is_nde()
        assert not EV.DCacheRefill().is_nde()
        assert not EV.IntRegState().is_nde()


class TestFusionRules:
    def test_commit_collapses(self):
        assert EV.InstrCommit.DESCRIPTOR.fusion_rule is FusionRule.COLLAPSE

    def test_snapshots_keep_latest(self):
        for cls in (EV.IntRegState, EV.FpRegState, EV.CsrState,
                    EV.VecRegState, EV.HypervisorCsrState):
            assert cls.DESCRIPTOR.fusion_rule is FusionRule.KEEP_LATEST

    def test_writebacks_accumulate(self):
        for cls in (EV.IntWriteback, EV.FpWriteback, EV.VecWriteback,
                    EV.DelayedIntUpdate, EV.DelayedFpUpdate):
            assert cls.DESCRIPTOR.fusion_rule is FusionRule.ACCUMULATE

    def test_hierarchy_passes_through(self):
        for cls in (EV.ICacheRefill, EV.DCacheRefill, EV.L2Refill,
                    EV.L1TlbFill, EV.L2TlbFill, EV.SbufferFlush):
            assert cls.DESCRIPTOR.fusion_rule is FusionRule.PASS_THROUGH

    def test_every_type_names_a_component(self):
        for cls in all_event_classes():
            assert cls.DESCRIPTOR.component
