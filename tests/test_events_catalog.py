"""Catalog tests: every one of the 32 event types, individually.

Parametrised over the registry so a new event type is automatically
covered: extreme-value round-trips, diff-chain round-trips, metadata
sanity, and checker acceptance of default-valued check events.
"""

import struct

import pytest

from repro.comm.fusion.differencing import Completer, Differencer
from repro.events import VerificationEvent, all_event_classes

ALL = all_event_classes()


def _max_valued(cls, tag=0):
    fields = {}
    for spec in cls.FIELDS:
        maximum = (1 << (8 * struct.calcsize("<" + spec.code))) - 1
        fields[spec.name] = maximum if spec.count == 1 \
            else (maximum,) * spec.count
    return cls(core_id=255, order_tag=tag, **fields)


@pytest.mark.parametrize("cls", ALL, ids=lambda c: c.__name__)
class TestPerType:
    def test_max_values_roundtrip(self, cls):
        event = _max_valued(cls)
        decoded = VerificationEvent.decode(event.encode())
        assert decoded == event

    def test_zero_values_roundtrip(self, cls):
        event = cls()
        assert VerificationEvent.decode(event.encode()) == event

    def test_unit_decomposition_consistent(self, cls):
        event = _max_valued(cls)
        units = event.to_units()
        assert len(units) == cls.unit_count()
        rebuilt = cls.from_units(units)
        assert rebuilt._flatten() == event._flatten()

    def test_diff_chain_with_extremes(self, cls):
        differ = Differencer()
        completer = Completer()
        for event in (cls(order_tag=0), _max_valued(cls, tag=1),
                      _max_valued(cls, tag=2), cls(order_tag=3)):
            restored = completer.complete(differ.encode(event))
            assert restored._flatten() == event._flatten()

    def test_metadata_sane(self, cls):
        descriptor = cls.DESCRIPTOR
        assert descriptor.instances >= 1
        assert descriptor.component
        assert cls.payload_size() > 0
        assert descriptor.name == cls.__name__

    def test_field_names_are_attributes(self, cls):
        event = cls()
        for spec in cls.FIELDS:
            assert hasattr(event, spec.name)

    def test_unit_sizes_valid(self, cls):
        assert all(size in (1, 2, 4, 8) for size in cls.unit_sizes())
