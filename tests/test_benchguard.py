"""Unit tests for the bench regression gate (toolkit/benchguard.py)."""

import json

from repro.toolkit.benchguard import (
    compare_dirs,
    compare_docs,
    headline_ratios,
    is_headline_key,
    main,
)


class TestHeadlineExtraction:
    def test_collects_speedup_leaves_recursively(self):
        doc = {
            "microbench": {"speedup": 2.25, "ops_per_sec": 1e6},
            "end_to_end": {
                "memory_churn": {"speedup": 1.17, "cycles_per_sec": 40000},
                "best_speedup": 1.37,
            },
            "stepping": {"dut_speedup": 3.3, "ref_speedup": 2.3},
            "mode": "full",
        }
        assert headline_ratios(doc) == {
            "microbench.speedup": 2.25,
            "end_to_end.memory_churn.speedup": 1.17,
            "end_to_end.best_speedup": 1.37,
            "stepping.dut_speedup": 3.3,
            "stepping.ref_speedup": 2.3,
        }

    def test_cross_trajectory_ratios_excluded(self):
        assert not is_headline_key("ratio_vs_bnsd")
        assert not is_headline_key("ratio_vs_z")
        doc = {"vs_committed": {"ratio_vs_bnsd": 1.2, "speedup": 1.5}}
        assert headline_ratios(doc) == {"vs_committed.speedup": 1.5}

    def test_raw_throughput_and_non_numeric_excluded(self):
        doc = {"cycles_per_sec": 40000, "workload": "memory_churn",
               "speedup": True}  # bool is not a ratio
        assert headline_ratios(doc) == {}


class TestCompareDocs:
    def test_within_tolerance_passes(self):
        committed = {"a": {"speedup": 2.0}}
        fresh = {"a": {"speedup": 1.81}}  # -9.5%
        assert compare_docs("f", committed, fresh, tolerance=0.10) == []

    def test_regression_beyond_tolerance_fails(self):
        committed = {"a": {"speedup": 2.0}}
        fresh = {"a": {"speedup": 1.79}}  # -10.5%
        regressions = compare_docs("f", committed, fresh, tolerance=0.10)
        assert len(regressions) == 1
        assert regressions[0].path == "a.speedup"
        assert "regressed" in str(regressions[0])

    def test_missing_headline_is_a_regression(self):
        committed = {"a": {"speedup": 2.0}}
        regressions = compare_docs("f", committed, {}, tolerance=0.10)
        assert len(regressions) == 1
        assert regressions[0].fresh is None
        assert "missing" in str(regressions[0])

    def test_improvements_and_new_keys_pass(self):
        committed = {"a": {"speedup": 2.0}}
        fresh = {"a": {"speedup": 2.6}, "b": {"speedup": 0.1}}
        assert compare_docs("f", committed, fresh) == []


class TestCompareDirs:
    def _write(self, directory, name, doc):
        (directory / name).write_text(json.dumps(doc))

    def test_matches_by_filename_and_skips_unpaired(self, tmp_path):
        committed = tmp_path / "committed"
        fresh = tmp_path / "fresh"
        committed.mkdir()
        fresh.mkdir()
        self._write(committed, "BENCH_a.json", {"speedup": 2.0})
        self._write(fresh, "BENCH_a.json", {"speedup": 1.0})
        self._write(committed, "BENCH_old.json", {"speedup": 9.0})
        self._write(fresh, "BENCH_new.json", {"speedup": 0.1})
        regressions, compared, skipped = compare_dirs(committed, fresh)
        assert compared == ["BENCH_a.json"]
        assert skipped == ["BENCH_old.json"]
        assert [r.path for r in regressions] == ["speedup"]


class TestCli:
    def _dirs(self, tmp_path, committed_doc, fresh_doc):
        committed = tmp_path / "committed"
        fresh = tmp_path / "fresh"
        committed.mkdir()
        fresh.mkdir()
        (committed / "BENCH_x.json").write_text(json.dumps(committed_doc))
        (fresh / "BENCH_x.json").write_text(json.dumps(fresh_doc))
        return committed, fresh

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        committed, fresh = self._dirs(tmp_path, {"speedup": 2.0},
                                      {"speedup": 2.1})
        assert main(["--committed", str(committed),
                     "--fresh", str(fresh)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        committed, fresh = self._dirs(tmp_path, {"speedup": 2.0},
                                      {"speedup": 1.0})
        assert main(["--committed", str(committed),
                     "--fresh", str(fresh)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_skip_label_disables_gate(self, tmp_path, capsys):
        committed, fresh = self._dirs(tmp_path, {"speedup": 2.0},
                                      {"speedup": 1.0})
        code = main(["--committed", str(committed), "--fresh", str(fresh),
                     "--labels", "docs,skip-benchguard"])
        assert code == 0
        assert "skipped" in capsys.readouterr().out

    def test_skip_label_from_environment(self, tmp_path, monkeypatch):
        committed, fresh = self._dirs(tmp_path, {"speedup": 2.0},
                                      {"speedup": 1.0})
        monkeypatch.setenv("BENCHGUARD_LABELS", "skip-benchguard")
        assert main(["--committed", str(committed),
                     "--fresh", str(fresh)]) == 0

    def test_custom_tolerance(self, tmp_path):
        committed, fresh = self._dirs(tmp_path, {"speedup": 2.0},
                                      {"speedup": 1.5})
        assert main(["--committed", str(committed), "--fresh", str(fresh),
                     "--tolerance", "0.30"]) == 0

    def test_no_files_passes(self, tmp_path, capsys):
        (tmp_path / "committed").mkdir()
        (tmp_path / "fresh").mkdir()
        assert main(["--committed", str(tmp_path / "committed"),
                     "--fresh", str(tmp_path / "fresh")]) == 0
        assert "no benchmark files" in capsys.readouterr().out

    def test_gate_catches_real_trajectories(self, tmp_path):
        """The committed repo trajectories pass against themselves."""
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        regressions, compared, _ = compare_dirs(root, root)
        assert compared  # BENCH_*.json exist at the repo root
        assert regressions == []
