"""The byte-compare fast path and zero-copy frames (PR 4).

``fast_compare=True`` (the default) lets the software side compare
received payload bytes directly against the REF-side expected encoding
and only materialise event objects on mismatch, NDEs or replay capture;
unpackers hand out ``memoryview`` payloads into the transfer buffer.
These tests pin that the fast path is *observationally identical* to the
event-object path (``fast_compare=False``): same counters on passing
runs, same mismatch on fault-injected runs, and that zero-copy payload
views survive arbitrarily many later frames.
"""

import random

import pytest

from repro.comm.packing.base import WireItem
from repro.comm.packing.batch import BatchPacker, BatchUnpacker
from repro.core import CONFIG_BNSD, CONFIG_Z, CoSimulation
from repro.dut import XIANGSHAN_DEFAULT, fault_by_name
from repro.events import all_event_classes
from repro.isa import assemble

# Every written register is live, so any single-write corruption
# propagates to architectural state (same program as test_replay).
WORKLOAD = """
_start:
    li sp, 0x80100000
    li t0, 200
    li t1, 0
loop:
    add t1, t1, t0
    sd t1, -8(sp)
    ld t2, -8(sp)
    add t1, t1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""

FAST = CONFIG_BNSD
LEGACY = CONFIG_BNSD.with_(name="EBINSD-legacy", fast_compare=False)


def _run(config, fault=None, trigger=300):
    cosim = CoSimulation(XIANGSHAN_DEFAULT, config, assemble(WORKLOAD))
    if fault is not None:
        fault_by_name(fault).install(cosim.dut.cores[0], trigger)
    return cosim.run(max_cycles=60_000)


def _observable(result):
    c = result.stats.counters
    return (result.cycles, result.instructions, result.exit_code,
            c.bytes_sent, c.invokes, c.sw_events_checked, c.sw_ref_steps,
            c.sw_dispatches, result.stats.events_captured,
            result.stats.events_transmitted, result.stats.meta_bytes,
            result.stats.checkpoints, result.uart_output)


class TestFastCompareEquivalence:
    def test_passing_run_identical_counters(self):
        fast = _run(FAST)
        legacy = _run(LEGACY)
        assert fast.passed and legacy.passed
        assert _observable(fast) == _observable(legacy)
        assert fast.stats.counters.sw_events_checked > 0

    @pytest.mark.parametrize("fault", [
        "control_flow_wdata", "store_queue_mismatch", "sbuffer_lost_bytes",
    ])
    def test_fault_detected_identically(self, fault):
        fast = _run(FAST, fault=fault)
        legacy = _run(LEGACY, fault=fault)
        assert fast.mismatch is not None and legacy.mismatch is not None
        for result in (fast, legacy):
            # The fast path materialises the event object on divergence:
            # the report must be as rich as the legacy one.
            assert result.mismatch.event is not None
            assert result.debug_report is not None
        assert ((fast.mismatch.core_id, fast.mismatch.slot,
                 type(fast.mismatch.event).__name__,
                 fast.mismatch.field_name, fast.mismatch.expected,
                 fast.mismatch.actual)
                == (legacy.mismatch.core_id, legacy.mismatch.slot,
                    type(legacy.mismatch.event).__name__,
                    legacy.mismatch.field_name, legacy.mismatch.expected,
                    legacy.mismatch.actual))

    def test_baseline_config_also_equivalent(self):
        fast = _run(CONFIG_Z)
        legacy = _run(CONFIG_Z.with_(name="Z-legacy", fast_compare=False))
        assert fast.passed and legacy.passed
        assert _observable(fast) == _observable(legacy)


def _random_items(count, seed):
    rng = random.Random(seed)
    classes = all_event_classes()
    items = []
    for tag in range(count):
        cls = rng.choice(classes)
        event = cls(core_id=rng.randrange(2), order_tag=tag)
        items.append(WireItem.from_event(event))
    return items


class TestZeroCopyLifetime:
    def test_views_survive_later_frames(self):
        """Payload views into a transfer stay valid after the packer has
        built arbitrarily many later frames (buffer-reuse hazard)."""
        packer = BatchPacker(frame_size=512)
        unpacker = BatchUnpacker()
        kept = []  # (WireItem view, expected payload bytes)
        for batch in range(20):
            items = _random_items(8, seed=batch)
            transfers = packer.pack_cycle(items) + packer.flush()
            for transfer in transfers:
                for item in unpacker.unpack(transfer):
                    kept.append((item, bytes(item.payload)))
        assert len(kept) >= 100
        for item, expected in kept:
            assert isinstance(item.payload, memoryview)
            assert bytes(item.payload) == expected
            # The view still decodes into a well-formed event.
            event = item.to_event()
            assert event.encode_payload() == expected

    def test_zero_copy_off_returns_owned_bytes(self):
        items = _random_items(8, seed=99)
        packer = BatchPacker(frame_size=4096)
        transfers = packer.pack_cycle(items) + packer.flush()
        copying = BatchUnpacker(zero_copy=False)
        viewing = BatchUnpacker()
        for transfer in transfers:
            owned = copying.unpack(transfer)
            views = viewing.unpack(transfer)
            assert [type(i.payload) for i in owned] == [bytes] * len(owned)
            # memoryview compares by content, so the items are equal.
            assert owned == views
