"""Coverage for the framework's smaller pieces: config, reports, stats."""

import pytest

import repro.events as EV
from repro.comm import PALLADIUM, CommCounters, model_overhead
from repro.core import (
    CONFIG_B,
    CONFIG_BN,
    CONFIG_BNSD,
    CONFIG_COUPLED,
    CONFIG_FIXED,
    CONFIG_Z,
    LADDER,
    DiffConfig,
)
from repro.core.report import DebugReport, Mismatch
from repro.core.stats import EventProfile, RunStats


class TestDiffConfig:
    def test_ladder_matches_artifact_names(self):
        assert [config.name for config in LADDER] == ["Z", "B", "BIN",
                                                      "EBINSD"]

    def test_ladder_is_cumulative(self):
        assert CONFIG_Z.packing == "dpic" and not CONFIG_Z.nonblocking
        assert CONFIG_B.packing == "batch" and not CONFIG_B.nonblocking
        assert CONFIG_BN.packing == "batch" and CONFIG_BN.nonblocking
        assert CONFIG_BNSD.squash and CONFIG_BNSD.differencing

    def test_comparators(self):
        assert CONFIG_FIXED.packing == "fixed"
        assert CONFIG_COUPLED.order_coupled and CONFIG_COUPLED.squash

    def test_with_creates_modified_copy(self):
        modified = CONFIG_BNSD.with_(fusion_window=8)
        assert modified.fusion_window == 8
        assert CONFIG_BNSD.fusion_window == 32  # original untouched
        assert modified.squash == CONFIG_BNSD.squash

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            CONFIG_Z.packing = "batch"

    def test_custom_config(self):
        config = DiffConfig(name="custom", packing="batch", squash=True,
                            differencing=False, fusion_window=7)
        assert config.fusion_window == 7


class TestReports:
    def _mismatch(self):
        event = EV.StoreEvent(core_id=1, order_tag=42, paddr=0x80001000,
                              data=5, mask=0xFF)
        return Mismatch(core_id=1, slot=42, event=event,
                        field_name="store_data", expected=5, actual=6)

    def test_mismatch_describe(self):
        text = self._mismatch().describe()
        assert "StoreEvent" in text
        assert "slot 42" in text
        assert "store_queue" in text

    def test_mismatch_component_from_descriptor(self):
        assert self._mismatch().component == "store_queue"

    def test_debug_report_render_without_localization(self):
        report = DebugReport(trigger=self._mismatch(), localized=None,
                             replay_slots=10, replayed_events=50,
                             reverted_records=7)
        text = report.render()
        assert "50 events over 10 slots" in text
        assert "7 log records" in text

    def test_debug_report_component_prefers_localized(self):
        localized = Mismatch(
            core_id=1, slot=40,
            event=EV.IntWriteback(order_tag=40, addr=3, data=1),
            field_name="xreg", expected=1, actual=2)
        report = DebugReport(trigger=self._mismatch(), localized=localized)
        assert report.component == "int_regfile"

    def test_notes_appear_in_render(self):
        report = DebugReport(trigger=self._mismatch(), localized=None,
                             notes=["custom note"])
        assert "custom note" in report.render()


class TestRunStats:
    def test_profile_rows_sorted_by_size(self):
        profile = EventProfile()
        profile.record(EV.InstrCommit())
        profile.record(EV.VecRegState())
        rows = profile.rows(cycles=10)
        sizes = [size for _name, size, _rate in rows]
        assert sizes == sorted(sizes)
        assert len(rows) == 32

    def test_profile_rates_normalised_by_cycles(self):
        profile = EventProfile()
        for _ in range(5):
            profile.record(EV.InstrCommit())
        rows = dict((name, rate) for name, _s, rate in profile.rows(10))
        assert rows["InstrCommit"] == pytest.approx(0.5)

    def test_derived_ratios_handle_empty_run(self):
        stats = RunStats()
        assert stats.bytes_per_cycle == 0
        assert stats.invokes_per_cycle == 0
        assert stats.bytes_per_instruction == 0

    def test_summary_string(self):
        stats = RunStats()
        stats.counters.cycles = 10
        stats.counters.invokes = 5
        assert "invokes=5" in stats.summary()

    def test_breakdown_delegates_to_model(self):
        stats = RunStats()
        stats.counters.cycles = 1000
        direct = model_overhead(PALLADIUM, 57.6, stats.counters, False)
        via_stats = stats.breakdown(PALLADIUM, 57.6, False)
        assert via_stats.total_us == pytest.approx(direct.total_us)


class TestOverheadBreakdownProps:
    def test_zero_cycles_infinite_speed(self):
        counters = CommCounters()
        breakdown = model_overhead(PALLADIUM, 57.6, counters, False)
        assert breakdown.speed_khz == float("inf") or breakdown.cycles == 0

    def test_communication_us_is_total_minus_dut(self):
        counters = CommCounters(cycles=100, invokes=10, bytes_sent=1000,
                                sw_ref_steps=100)
        breakdown = model_overhead(PALLADIUM, 57.6, counters, False)
        assert breakdown.communication_us == pytest.approx(
            breakdown.total_us - breakdown.dut_us)
