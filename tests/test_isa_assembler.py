"""Tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblerError, assemble, decode
from repro.isa.assembler import Assembler
from repro.isa.const import DRAM_BASE


def words(image: bytes):
    return [int.from_bytes(image[i : i + 4], "little")
            for i in range(0, len(image), 4)]


def first(source: str):
    return decode(words(assemble(source))[0])


class TestBasicEncoding:
    def test_addi(self):
        d = first("addi x5, x6, -12")
        assert (d.name, d.rd, d.rs1, d.imm) == ("addi", 5, 6, -12)

    def test_abi_register_names(self):
        d = first("add a0, sp, t0")
        assert (d.rd, d.rs1, d.rs2) == (10, 2, 5)

    def test_load_store_operands(self):
        d = first("ld t0, 16(sp)")
        assert (d.name, d.rd, d.rs1, d.imm) == ("ld", 5, 2, 16)
        d = first("sd t0, -16(sp)")
        assert (d.name, d.rs2, d.rs1, d.imm) == ("sd", 5, 2, -16)

    def test_negative_branch_offset(self):
        image = assemble("top:\n nop\n beq x1, x2, top")
        d = decode(words(image)[1])
        assert d.name == "beq" and d.imm == -4

    def test_forward_branch(self):
        image = assemble("beq x0, x0, end\n nop\n end: nop")
        d = decode(words(image)[0])
        assert d.imm == 8

    def test_jal_with_implicit_ra(self):
        image = assemble("jal target\n nop\n target: nop")
        d = decode(words(image)[0])
        assert d.name == "jal" and d.rd == 1 and d.imm == 8

    def test_lui(self):
        d = first("lui t0, 0x80000")
        assert d.name == "lui" and d.imm == -0x80000000

    def test_csr_by_name_and_number(self):
        assert first("csrrw x1, mstatus, x2").csr == 0x300
        assert first("csrrw x1, 0x305, x2").csr == 0x305

    def test_shift_immediates(self):
        assert first("slli t0, t0, 63").imm == 63
        assert first("srai t0, t0, 4").name == "srai"

    def test_system_instructions(self):
        for name in ("ecall", "ebreak", "mret", "sret", "wfi", "fence",
                     "fence.i"):
            assert first(name).name == name

    def test_amo(self):
        d = first("amoadd.d t0, t1, (t2)")
        assert (d.name, d.rd, d.rs2, d.rs1) == ("amoadd.d", 5, 6, 7)

    def test_lr_sc(self):
        assert first("lr.d t0, (a0)").name == "lr.d"
        d = first("sc.w t0, t1, (a0)")
        assert (d.name, d.rd, d.rs2, d.rs1) == ("sc.w", 5, 6, 10)

    def test_vector(self):
        assert first("vsetvli t0, t1, e64").name == "vsetvli"
        assert first("vle64.v v1, (a0)").name == "vle64.v"
        assert first("vadd.vv v3, v1, v2").name == "vadd.vv"

    def test_fp(self):
        assert first("fld f1, 0(a0)").name == "fld"
        assert first("fadd.d f3, f1, f2").name == "fadd.d"
        assert first("fmv.x.d t0, f1").name == "fmv.x.d"


class TestPseudoInstructions:
    def test_nop_mv_not_neg(self):
        assert first("nop").name == "addi"
        d = first("mv t0, t1")
        assert (d.name, d.rd, d.rs1, d.imm) == ("addi", 5, 6, 0)
        assert first("not t0, t1").name == "xori"
        assert first("neg t0, t1").name == "sub"

    def test_branch_pseudos(self):
        assert first("beqz t0, 8").name == "beq"
        assert first("bnez t0, 8").name == "bne"
        d = first("ble t0, t1, 8")
        assert d.name == "bge" and d.rs1 == 6 and d.rs2 == 5
        d = first("bgt t0, t1, 8")
        assert d.name == "blt" and d.rs1 == 6 and d.rs2 == 5

    def test_j_jr_call_ret(self):
        assert first("j 8").name == "jal"
        assert first("jr t0").name == "jalr"
        assert first("ret").name == "jalr"
        image = assemble("call fn\n fn: nop")
        assert decode(words(image)[0]).rd == 1

    def test_csr_pseudos(self):
        assert first("csrr t0, mstatus").name == "csrrs"
        assert first("csrw mstatus, t0").name == "csrrw"
        assert first("csrwi mstatus, 3").name == "csrrwi"


class TestLiExpansion:
    @pytest.mark.parametrize("value", [0, 1, -1, 2047, -2048])
    def test_small(self, value):
        assert len(assemble(f"li t0, {value}")) == 4

    @pytest.mark.parametrize("value", [2048, 0x7FFFFFFF, -0x80000000, 123456])
    def test_32bit(self, value):
        assert len(assemble(f"li t0, {value}")) == 8

    @pytest.mark.parametrize("value", [
        0x80000000, 0x8000000000000000, 0xDEADBEEFCAFEBABE, 0x123456789ABCDEF0,
        -0x7FFFFFFFFFFFFFFF,
    ])
    def test_64bit_length(self, value):
        assert len(assemble(f"li t0, {value}")) == 32

    def test_li_of_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="use `la`"):
            assemble("li t0, label\nlabel: nop")


class TestDirectives:
    def test_word_dword_byte(self):
        image = assemble(".word 0x11223344\n.dword 0x8877665544332211\n.byte 1, 2")
        assert image[:4] == bytes.fromhex("44332211")
        assert image[4:12] == bytes.fromhex("1122334455667788")
        assert image[12:14] == b"\x01\x02"

    def test_zero(self):
        assert assemble(".zero 16") == b"\x00" * 16

    def test_ascii_with_escapes(self):
        image = assemble('.ascii "hi\\n"')
        assert image == b"hi\n"

    def test_align(self):
        image = assemble("nop\n.align 3\nmarker: .word 1")
        assert len(image) == 12  # 4 + 4 pad + 4

    def test_labels_on_data(self):
        asm = Assembler()
        asm.assemble("start: nop\ndata: .dword 42")
        assert asm.labels["data"] == DRAM_BASE + 4


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate t0")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError, match="unknown register"):
            assemble("addi t9, t0, 1")

    def test_unknown_symbol(self):
        with pytest.raises(AssemblerError, match="unknown symbol"):
            assemble("beq x0, x0, nowhere")

    def test_error_includes_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nbogus x0")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="bad memory operand"):
            assemble("ld t0, t1")
