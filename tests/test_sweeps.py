"""Tests for the Equation-1 model-exploration sweeps."""

import pytest

from repro.analysis import (
    nonblocking_gain,
    required_reduction,
    speed_vs_parameter,
)
from repro.comm import FPGA_VU19P, PALLADIUM
from repro.core import CONFIG_B, CONFIG_BNSD, CONFIG_Z, run_cosim
from repro.dut import XIANGSHAN_DEFAULT
from repro.workloads import build

GATES = XIANGSHAN_DEFAULT.gates_millions


@pytest.fixture(scope="module")
def counters():
    workload = build("microbench", iterations=150)
    result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_B, workload.image,
                       max_cycles=workload.max_cycles)
    assert result.passed
    return result.stats.counters


class TestSpeedVsParameter:
    def test_more_bandwidth_never_hurts(self, counters):
        curve = speed_vs_parameter(PALLADIUM, GATES, counters,
                                   "bw_bytes_per_us", [10, 50, 100, 1000])
        speeds = [khz for _v, khz in curve]
        assert speeds == sorted(speeds)

    def test_higher_sync_latency_hurts_blocking(self, counters):
        curve = speed_vs_parameter(PALLADIUM, GATES, counters, "t_sync_us",
                                   [1, 10, 100], nonblocking=False)
        speeds = [khz for _v, khz in curve]
        assert speeds == sorted(speeds, reverse=True)

    def test_unknown_parameter_rejected(self, counters):
        with pytest.raises(ValueError, match="cannot sweep"):
            speed_vs_parameter(PALLADIUM, GATES, counters, "name", [1])

    def test_speed_bounded_by_dut_clock(self, counters):
        curve = speed_vs_parameter(PALLADIUM, GATES, counters,
                                   "check_byte_us", [0.0, 0.001])
        for _value, khz in curve:
            assert khz <= PALLADIUM.dut_clock_khz(GATES) + 1e-6


class TestNonblockingGain:
    def test_gain_at_least_one(self, counters):
        info = nonblocking_gain(PALLADIUM, GATES, counters)
        assert info["gain"] >= 1.0
        assert info["critical_stage"] in ("dut", "link", "software")

    def test_software_heavy_point_is_software_bound(self, counters):
        from dataclasses import replace

        slow_sw = replace(PALLADIUM, check_byte_us=10.0)
        info = nonblocking_gain(slow_sw, GATES, counters)
        assert info["critical_stage"] == "software"

    def test_link_heavy_point_is_link_bound(self, counters):
        from dataclasses import replace

        slow_link = replace(PALLADIUM, bw_bytes_per_us=0.01, nb_factor=1.0)
        info = nonblocking_gain(slow_link, GATES, counters)
        assert info["critical_stage"] == "link"


class TestRequiredReduction:
    def test_baseline_needs_big_reductions(self):
        workload = build("microbench", iterations=150)
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_Z, workload.image,
                           max_cycles=workload.max_cycles)
        needed = required_reduction(PALLADIUM, GATES, result.stats.counters,
                                    target_fraction=0.9, nonblocking=False)
        # No single knob suffices at the baseline (the paper's point:
        # packing, fusion AND parallelism are all needed).
        assert all(factor == float("inf") or factor > 2
                   for factor in needed.values())

    def test_optimized_point_already_meets_target(self):
        workload = build("microbench", iterations=150)
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        needed = required_reduction(PALLADIUM, GATES, result.stats.counters,
                                    target_fraction=0.45, nonblocking=True)
        assert needed["software"] <= 1.1  # (almost) already fast enough

    def test_reductions_are_scale_factors(self, counters):
        needed = required_reduction(FPGA_VU19P, GATES, counters,
                                    target_fraction=0.05)
        for factor in needed.values():
            assert factor >= 1.0
