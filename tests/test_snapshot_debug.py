"""Tests for DUT snapshot/restore and snapshot-based debugging."""


from repro.core import CONFIG_BNSD, SnapshotCoSimulation
from repro.dut import (
    XIANGSHAN_DEFAULT,
    DutSystem,
    fault_by_name,
    restore_snapshot,
    take_snapshot,
)
from repro.isa import assemble

PROGRAM = """
_start:
    li sp, 0x80100000
    li t0, 600
    li t1, 0
loop:
    add t1, t1, t0
    sd t1, -8(sp)
    ld t2, -8(sp)
    add t1, t1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""


class TestSnapshotRestore:
    def _run_cycles(self, system, n):
        events = []
        for _ in range(n):
            for bundle in system.cycle():
                events.extend(bundle.events)
        return events

    def test_reexecution_is_bit_identical(self):
        """Restore + re-run reproduces the exact same event stream."""
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(assemble(PROGRAM))
        self._run_cycles(system, 300)
        snapshot = take_snapshot(system)
        first = self._run_cycles(system, 300)
        restore_snapshot(system, snapshot)
        second = self._run_cycles(system, 300)
        assert first == second

    def test_restore_rewinds_architectural_state(self):
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(assemble(PROGRAM))
        self._run_cycles(system, 200)
        snapshot = take_snapshot(system)
        regs_at_snap = list(system.cores[0].state.xregs)
        retired_at_snap = system.cores[0].retired
        self._run_cycles(system, 400)
        assert system.cores[0].retired > retired_at_snap
        restore_snapshot(system, snapshot)
        assert system.cores[0].state.xregs == regs_at_snap
        assert system.cores[0].retired == retired_at_snap

    def test_restore_rewinds_memory(self):
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(assemble(PROGRAM))
        self._run_cycles(system, 200)
        snapshot = take_snapshot(system)
        value_at_snap = system.memory.load(0x800FFFF8, 8)
        self._run_cycles(system, 300)
        restore_snapshot(system, snapshot)
        assert system.memory.load(0x800FFFF8, 8) == value_at_snap

    def test_snapshot_size_accounting(self):
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(assemble(PROGRAM))
        self._run_cycles(system, 100)
        snapshot = take_snapshot(system)
        assert snapshot.size_bytes() >= system.memory.allocated_bytes()

    def test_fault_refires_after_restore(self):
        """Positional faults reproduce on re-execution, like real bugs."""
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(assemble(PROGRAM))
        fault_by_name("control_flow_wdata").install(system.cores[0], 500)
        self._run_cycles(system, 100)
        snapshot = take_snapshot(system)
        first = self._run_cycles(system, 600)
        restore_snapshot(system, snapshot)
        second = self._run_cycles(system, 600)
        assert first == second  # includes the corrupted event both times


class TestSnapshotCoSimulation:
    def _run(self, fault=None, trigger=2500, interval=600):
        cosim = SnapshotCoSimulation(
            XIANGSHAN_DEFAULT, CONFIG_BNSD, assemble(PROGRAM),
            snapshot_interval=interval)
        if fault:
            fault_by_name(fault).install(cosim.dut.cores[0], trigger)
        result = cosim.run(max_cycles=100_000)
        return cosim, result

    def test_clean_run_passes_with_snapshots(self):
        cosim, result = self._run()
        assert result.passed
        assert len(cosim._snapshots) >= 1

    def test_recovery_localizes_same_bug(self):
        cosim, result = self._run(fault="store_queue_mismatch")
        assert result.mismatch is not None
        report = result.debug_report
        assert report is not None
        assert report.localized is not None
        assert report.localized.component == "store_queue"

    def test_recovery_costs_measured(self):
        cosim, result = self._run(fault="store_queue_mismatch")
        costs = cosim.costs
        assert costs is not None
        assert costs.rerun_cycles > 0
        assert costs.restore_bytes > 0
        assert costs.snapshots_taken >= 1

    def test_replay_avoids_dut_reexecution(self):
        """The head-to-head of Figure 10: Replay reprocesses buffered
        events (zero DUT cycles); snapshots re-execute the DUT."""
        from repro.core import CoSimulation

        snap_cosim, snap_result = self._run(fault="store_queue_mismatch")
        replay_cosim = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                                    assemble(PROGRAM))
        fault_by_name("store_queue_mismatch").install(
            replay_cosim.dut.cores[0], 2500)
        replay_result = replay_cosim.run(max_cycles=100_000)
        assert replay_result.mismatch is not None
        # Both localise the same defect...
        assert (replay_result.debug_report.localized.component
                == snap_result.debug_report.localized.component)
        # ...but snapshotting re-ran the DUT while Replay did not.
        assert snap_cosim.costs.rerun_cycles > 0
        assert replay_result.debug_report.reverted_records >= 0
