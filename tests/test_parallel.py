"""Tests for the campaign executor: protocol, determinism, failure paths.

The multi-process tests carry the ``campaign`` marker so CI can schedule
them separately (they fork a worker pool); run just these with
``pytest -m campaign``.
"""

import pickle
import time

import pytest

from repro.core import CONFIG_BNSD, run_cosim
from repro.core.summary import RunSummary
from repro.dut import XIANGSHAN_DEFAULT
from repro.parallel import (
    CampaignExecutor,
    JobSpec,
    register_runner,
    runner_for,
)
from repro.workloads import build, fuzz_campaign

# ----------------------------------------------------------------------
# Test-only job kinds.  Registered at import time so fork()ed pool
# workers inherit them; attempt counters live in module globals, which
# works in both serial and pool modes because all attempts of one job
# run in the same process.
# ----------------------------------------------------------------------
_FLAKY_ATTEMPTS = {}


def _passing_summary() -> RunSummary:
    return RunSummary(passed=True, exit_code=0, cycles=10, instructions=5)


@register_runner("test-pass")
def _run_pass(params):
    return _passing_summary()


@register_runner("test-fail")
def _run_fail(params):
    return RunSummary(passed=False, exit_code=1, cycles=10, instructions=5)


@register_runner("test-hang")
def _run_hang(params):
    time.sleep(params.get("sleep", 60))
    return _passing_summary()


@register_runner("test-boom")
def _run_boom(params):
    raise ValueError("deliberate runner explosion")


@register_runner("test-flaky")
def _run_flaky(params):
    key = params["key"]
    _FLAKY_ATTEMPTS[key] = _FLAKY_ATTEMPTS.get(key, 0) + 1
    if _FLAKY_ATTEMPTS[key] < params["succeed_on"]:
        raise RuntimeError("not yet")
    return _passing_summary()


def _specs(kind, count, **params):
    return [JobSpec(kind=kind, label=f"{kind} {i}", params=dict(params))
            for i in range(count)]


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestJobProtocol:
    def test_spec_and_result_pickle_roundtrip(self):
        spec = JobSpec(kind="fuzz", label="seed 7",
                       params={"seed": 7, "length": 40,
                               "dut": XIANGSHAN_DEFAULT,
                               "config": CONFIG_BNSD})
        assert pickle.loads(pickle.dumps(spec)) == spec
        campaign = CampaignExecutor(workers=1).run([spec])
        job = campaign.jobs[0]
        assert pickle.loads(pickle.dumps(job)) == job

    def test_run_summary_matches_run_result(self):
        workload = build("microbench")
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        summary = result.summarize()
        assert summary.passed == result.passed
        assert summary.cycles == result.cycles
        assert summary.instructions == result.instructions
        assert summary.counters == result.stats.counters
        assert summary.invokes_per_cycle == pytest.approx(
            result.stats.invokes_per_cycle)
        # The summary reproduces the modeled breakdown exactly.
        from repro.comm import PALLADIUM
        gates = XIANGSHAN_DEFAULT.gates_millions
        assert (summary.breakdown(PALLADIUM, gates, True).total_us
                == result.breakdown(PALLADIUM, gates, True).total_us)
        assert pickle.loads(pickle.dumps(summary)) == summary

    def test_mismatch_summary_is_plain_and_picklable(self):
        from repro.core import CoSimulation
        from repro.dut import fault_by_name
        workload = build("microbench")
        cosim = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image)
        fault_by_name("store_queue_mismatch").install(
            cosim.dut.cores[0], 300)
        result = cosim.run(max_cycles=workload.max_cycles)
        assert result.mismatch is not None
        summary = result.summarize()
        assert summary.mismatch.event_type
        assert summary.mismatch.description == result.mismatch.describe()
        assert summary.debug_report_text == result.debug_report.render()
        assert pickle.loads(pickle.dumps(summary.mismatch)) == \
            summary.mismatch

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown job kind"):
            runner_for("no-such-kind")


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
@pytest.mark.campaign
class TestDeterminism:
    def test_fuzz_campaign_byte_identical_across_worker_counts(self):
        seeds = range(8)
        serial = fuzz_campaign(seeds, length=40, workers=1)
        parallel = fuzz_campaign(seeds, length=40, workers=4)
        assert serial.render() == parallel.render()
        # Not just the rendering: the full summaries agree value-for-value.
        assert [job.summary for job in serial.jobs] == \
            [job.summary for job in parallel.jobs]
        assert serial.aggregate_counters() == parallel.aggregate_counters()

    def test_on_result_fires_in_submission_order(self):
        seen = []
        executor = CampaignExecutor(workers=4)
        executor.run(_specs("test-pass", 8),
                     on_result=lambda job: seen.append(job.index))
        assert seen == list(range(8))

    def test_on_result_order_survives_staggered_completion(self):
        """The hard case for callback ordering: the *first* submitted
        job finishes last (its sleep dwarfs the others), so a
        completion-order implementation would fire callbacks 1..5
        before 0.  The consumer must still fold in submission order."""
        specs = [JobSpec(kind="test-hang", label=f"job {i}",
                         params={"sleep": 0.4 if i == 0 else 0.01})
                 for i in range(6)]
        seen = []
        campaign = CampaignExecutor(workers=4).run(
            specs, on_result=lambda job: seen.append(job.index))
        assert seen == list(range(6))
        assert campaign.passed

    def test_on_result_sees_results_before_aggregation(self):
        """Each callback's JobResult is final (summary attached) and the
        callback list equals the aggregated campaign.jobs list."""
        streamed = []
        campaign = CampaignExecutor(workers=4).run(
            _specs("test-pass", 5), on_result=streamed.append)
        assert streamed == campaign.jobs
        assert all(job.summary is not None for job in streamed)

    def test_render_has_no_wallclock(self):
        campaign = CampaignExecutor(workers=1).run(_specs("test-pass", 2))
        rendered = campaign.render()
        assert "jobs/s" not in rendered
        assert "aggregate: 2/2 passed" in rendered
        # Timing lives in the separate rollup instead.
        assert "jobs/s" in campaign.stats.rollup()


# ----------------------------------------------------------------------
# Cooperative stop (the campaign service's cancellation hook)
# ----------------------------------------------------------------------
class TestShouldStop:
    @pytest.mark.campaign
    @pytest.mark.parametrize("workers", [1, 4])
    def test_stop_after_three_consumed_jobs(self, workers):
        if workers > 1:
            pytest.importorskip("multiprocessing")
        consumed = []
        campaign = CampaignExecutor(workers=workers).run(
            _specs("test-pass", 8),
            on_result=lambda job: consumed.append(job.index),
            should_stop=lambda: len(consumed) >= 3)
        assert consumed == [0, 1, 2]
        assert len(campaign.jobs) == 3
        assert campaign.stats.stopped
        # the consumed prefix is identical to a serial run's prefix
        assert [job.index for job in campaign.jobs] == [0, 1, 2]

    def test_stop_before_first_job_runs_nothing(self):
        campaign = CampaignExecutor(workers=1).run(
            _specs("test-pass", 4), should_stop=lambda: True)
        assert campaign.jobs == []
        assert campaign.stats.stopped

    def test_no_stop_hook_leaves_flag_clear(self):
        campaign = CampaignExecutor(workers=1).run(_specs("test-pass", 2))
        assert not campaign.stats.stopped


# ----------------------------------------------------------------------
# Timeout / retry / error paths
# ----------------------------------------------------------------------
class TestFailurePaths:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_hanging_job_times_out_and_retries(self, workers):
        if workers > 1:
            pytest.importorskip("multiprocessing")
        executor = CampaignExecutor(workers=workers, job_timeout=0.2,
                                    retries=1)
        campaign = executor.run(_specs("test-hang", 1, sleep=60))
        (job,) = campaign.jobs
        assert not job.ok
        assert job.timed_out
        assert job.attempts == 2
        assert campaign.stats.jobs_broken == 1
        assert campaign.stats.jobs_timed_out == 1
        assert campaign.stats.retries_used == 1
        assert "TIMEOUT" in campaign.render()

    def test_exception_captured_with_traceback(self):
        campaign = CampaignExecutor(workers=1, retries=0).run(
            _specs("test-boom", 1))
        (job,) = campaign.jobs
        assert not job.ok and not job.timed_out
        assert "deliberate runner explosion" in job.error
        assert job.attempts == 1

    def test_retry_recovers_flaky_job(self):
        _FLAKY_ATTEMPTS.clear()
        executor = CampaignExecutor(workers=1, retries=2)
        campaign = executor.run(
            [JobSpec(kind="test-flaky", label="flaky",
                     params={"key": "a", "succeed_on": 3})])
        (job,) = campaign.jobs
        assert job.ok and job.attempts == 3
        assert campaign.stats.retries_used == 2
        assert campaign.stats.jobs_ok == 1

    def test_mismatch_is_not_retried(self):
        executor = CampaignExecutor(workers=1, retries=3)
        campaign = executor.run(_specs("test-fail", 1))
        (job,) = campaign.jobs
        assert job.ok and not job.passed
        assert job.attempts == 1  # a failing run is a completed job
        assert campaign.stats.jobs_failed == 1


# ----------------------------------------------------------------------
# First-failure short-circuit
# ----------------------------------------------------------------------
@pytest.mark.campaign
class TestShortCircuit:
    def _mixed_specs(self):
        specs = _specs("test-pass", 6)
        specs[2] = JobSpec(kind="test-fail", label="test-fail 2")
        return specs

    @pytest.mark.parametrize("workers", [1, 4])
    def test_stops_at_first_failure_in_submission_order(self, workers):
        executor = CampaignExecutor(workers=workers, short_circuit=True)
        campaign = executor.run(self._mixed_specs())
        assert len(campaign.jobs) == 3
        assert [job.passed for job in campaign.jobs] == [True, True, False]
        assert campaign.stats.short_circuited

    def test_serial_and_parallel_reports_identical(self):
        serial = CampaignExecutor(workers=1, short_circuit=True).run(
            self._mixed_specs())
        parallel = CampaignExecutor(workers=4, short_circuit=True).run(
            self._mixed_specs())
        assert serial.render() == parallel.render()

    def test_no_short_circuit_runs_everything(self):
        campaign = CampaignExecutor(workers=1).run(self._mixed_specs())
        assert len(campaign.jobs) == 6
        assert not campaign.stats.short_circuited


# ----------------------------------------------------------------------
# Stats rollup
# ----------------------------------------------------------------------
class TestStatsRollup:
    def test_rollup_counts_and_throughput(self):
        campaign = CampaignExecutor(workers=1).run(_specs("test-pass", 5))
        stats = campaign.stats
        assert stats.jobs_total == stats.jobs_ok == 5
        assert stats.wall_time_s > 0
        assert stats.jobs_per_sec > 0
        assert 0.0 <= stats.worker_utilization <= 1.0
        assert "5 jobs on 1 worker(s)" in stats.rollup()

    def test_aggregate_counters_sum_runs(self):
        campaign = fuzz_campaign(range(2), length=30, workers=1)
        total = campaign.aggregate_counters()
        per_job = [job.summary.counters for job in campaign.jobs]
        assert total.cycles == sum(c.cycles for c in per_job)
        assert total.bytes_sent == sum(c.bytes_sent for c in per_job)

    def test_workers_default_to_cpu_count(self):
        import os
        executor = CampaignExecutor()
        assert executor.workers == (os.cpu_count() or 1)
