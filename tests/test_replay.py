"""Tests for Replay: token-managed buffering, revert, reprocessing."""

import pytest

import repro.events as EV
from repro.core import CONFIG_BNSD, CONFIG_Z, CoSimulation
from repro.core.replay import ReplayBuffer
from repro.core.snapshot import SnapshotDebugger
from repro.dut import XIANGSHAN_DEFAULT, fault_by_name
from repro.isa import assemble

# Every written register is live (feeds the accumulator), so ANY
# single-write corruption propagates to the final architectural state and
# survives fusion windows.
WORKLOAD = """
_start:
    li sp, 0x80100000
    li t0, 200
    li t1, 0
loop:
    add t1, t1, t0
    sd t1, -8(sp)
    ld t2, -8(sp)
    add t1, t1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""


class TestReplayBuffer:
    def _event(self, tag):
        return EV.InstrCommit(order_tag=tag, pc=tag, fused_count=1)

    def test_fetch_range_filters_by_token(self):
        buffer = ReplayBuffer()
        buffer.push([self._event(t) for t in range(10)])
        fetched = buffer.fetch_range(3, 6)
        assert [e.order_tag for e in fetched] == [3, 4, 5, 6]

    def test_irrelevant_later_events_filtered(self):
        buffer = ReplayBuffer()
        buffer.push([self._event(t) for t in range(10)])
        # Events 7..9 arrived between failure (token 5) and the replay
        # request; tokens keep them out.
        assert all(e.order_tag <= 5 for e in buffer.fetch_range(0, 5))

    def test_trim_below_checkpoint(self):
        buffer = ReplayBuffer()
        buffer.push([self._event(t) for t in range(10)])
        buffer.trim_below(5)
        assert len(buffer) == 5
        assert buffer.fetch_range(0, 10)[0].order_tag == 5

    def test_capacity_drops_whole_old_slots(self):
        buffer = ReplayBuffer(capacity_slots=4)
        for tag in range(10):
            buffer.push([self._event(tag), self._event(tag)])
        assert buffer.dropped_slots > 0
        tags = {e.order_tag for e in buffer.fetch_range(0, 100)}
        assert max(tags) - min(tags) <= 4


def run_with_fault(fault_name: str, trigger: int = 300,
                   config=CONFIG_BNSD, source: str = WORKLOAD):
    cosim = CoSimulation(XIANGSHAN_DEFAULT, config, assemble(source))
    fault_by_name(fault_name).install(cosim.dut.cores[0], trigger)
    return cosim.run(max_cycles=60_000)


class TestEndToEndReplay:
    def test_mismatch_triggers_replay_report(self):
        result = run_with_fault("control_flow_wdata")
        assert result.mismatch is not None
        assert result.debug_report is not None
        report = result.debug_report
        assert report.replayed_events > 0
        assert report.reverted_records >= 0
        assert "debug report" in report.render()

    def test_replay_localizes_to_instruction(self):
        result = run_with_fault("store_queue_mismatch")
        report = result.debug_report
        assert report.localized is not None
        # The fused trigger can only say "this window"; replay pinpoints a
        # single slot at or before the fused mismatch.
        assert report.localized.slot <= report.trigger.slot

    def test_replay_identifies_component(self):
        result = run_with_fault("store_queue_mismatch")
        assert result.debug_report.component == "store_queue"

    def test_replay_window_bounded_by_checkpoint(self):
        result = run_with_fault("control_flow_wdata")
        report = result.debug_report
        assert report.replay_slots <= CONFIG_BNSD.checkpoint_interval * 2

    def test_detection_without_replay_when_disabled(self):
        config = CONFIG_BNSD.with_(replay=False)
        result = run_with_fault("control_flow_wdata", config=config)
        assert result.mismatch is not None
        assert result.debug_report is None

    def test_unfaulted_run_has_no_report(self):
        cosim = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                             assemble(WORKLOAD))
        result = cosim.run(max_cycles=60_000)
        assert result.passed
        assert result.debug_report is None

    #: FP workload where the corrupted f-register bits feed back into the
    #: integer accumulator exactly (fmv, not a rounding conversion).
    FP_WORKLOAD = WORKLOAD.replace(
        "add t1, t1, t2",
        "fmv.d.x f1, t2\n    fmv.x.d t3, f1\n    add t1, t1, t3")

    @pytest.mark.parametrize("fault_name", [
        "misaligned_wakeup",  # integer write corruption, live accumulator
        "sbuffer_lost_bytes",  # store corruption read back by the load
    ])
    def test_integer_faults_detected(self, fault_name):
        result = run_with_fault(fault_name, source=WORKLOAD)
        assert result.mismatch is not None

    def test_fp_fault_detected(self):
        result = run_with_fault("fp_writeback_corrupt",
                                source=self.FP_WORKLOAD)
        assert result.mismatch is not None

    def test_dead_corruption_invisible_to_fused_checks(self):
        """A transient writeback corruption that is overwritten *within a
        fusion window* is fused away by ACCUMULATE (the documented fusion
        trade-off); the unfused per-write check still sees it.

        Built directly on the fuser/checker so the window alignment is
        deterministic."""
        import repro.events as EV
        from repro.comm.fusion import Completer, SquashFuser

        def commits(corrupt_mid: bool):
            # Three writes to x5 in one window; the middle one corrupted.
            events = []
            values = [10, 20, 30]
            for tag, value in enumerate(values):
                reported = value ^ (1 if corrupt_mid and tag == 1 else 0)
                events.append(EV.IntWriteback(order_tag=tag, addr=5,
                                              data=reported))
                events.append(EV.InstrCommit(
                    order_tag=tag, pc=0x80000000 + 4 * tag,
                    instr=0x13, wdata=value, rd=5,
                    flags=EV.FLAG_RF_WEN, fused_count=1))
            return events

        class FakeRef:
            """Minimal REF: x5 follows the clean value sequence."""

            def __init__(self):
                from repro.core.framework import REF_MMIO_RANGES
                from repro.isa import assemble
                from repro.ref import RefModel

                source = ("li t0, 10\nli t0, 20\nli t0, 30\n"
                          "li a0, 0\nebreak")
                self.ref = RefModel(mmio_ranges=REF_MMIO_RANGES)
                self.ref.load_image(assemble(source))

        from repro.core.checker import Checker

        def check(fused: bool):
            ref = FakeRef().ref
            checker = Checker(ref)
            events = commits(corrupt_mid=True)
            if fused:
                fuser = SquashFuser(window=16, differencing=False)
                completer = Completer()
                items = fuser.on_cycle(events) + fuser.flush()
                stream = [completer.complete(item) for item in items]
            else:
                stream = events
            for event in stream:
                mismatch = checker.process(event)
                if mismatch is not None:
                    return mismatch
            return None

        assert check(fused=False) is not None  # raw per-write check fires
        assert check(fused=True) is None  # ACCUMULATE keeps only the last

    def test_baseline_config_also_detects(self):
        result = run_with_fault("control_flow_wdata", config=CONFIG_Z)
        assert result.mismatch is not None

    def test_fused_and_raw_detect_same_fault(self):
        fused = run_with_fault("store_queue_mismatch", config=CONFIG_BNSD)
        raw = run_with_fault("store_queue_mismatch", config=CONFIG_Z)
        assert fused.mismatch is not None and raw.mismatch is not None


class TestSnapshotBaseline:
    def test_snapshot_cost_grows_with_interval(self):
        debugger = SnapshotDebugger(interval_cycles=100)
        for cycle in range(0, 1000, 10):
            debugger.on_cycle(cycle, cycle)
        assert len(debugger.snapshots) >= 9
        assert debugger.total_snapshot_bytes() > 9 * 64 << 20

    def test_recovery_reruns_from_nearest_snapshot(self):
        debugger = SnapshotDebugger(interval_cycles=100)
        for cycle in range(0, 1000, 10):
            debugger.on_cycle(cycle, cycle)
        cost = debugger.recovery_cost(555)
        assert 0 <= cost["rerun_cycles"] <= 100
        assert cost["restore_bytes"] > 0

    def test_replay_cheaper_than_snapshots(self):
        """The Figure 10 comparison: Replay's buffered events and
        compensation log are orders of magnitude smaller than full-DUT
        snapshots for the same failure."""
        result = run_with_fault("control_flow_wdata")
        report = result.debug_report
        debugger = SnapshotDebugger(interval_cycles=100)
        for cycle in range(0, result.cycles, 10):
            debugger.on_cycle(cycle, cycle)
        replay_bytes = report.replayed_events * 64  # generous estimate
        assert replay_bytes < debugger.total_snapshot_bytes() / 100
