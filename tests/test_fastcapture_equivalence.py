"""Straight-to-wire capture must be byte-identical to the object path.

The contract of :mod:`repro.comm.fastcapture` is *invisibility*: with
``fast_capture=True`` the monitors serialise raw field values directly
into the packer — no ``VerificationEvent``, no ``WireItem`` — and the
resulting wire stream, counters, reports and metric snapshots must match
the legacy event-object path bit for bit.  Every test compares a fast
run/stream against a freshly executed legacy reference, in the style of
``test_jit_equivalence.py``.

Coverage map:

* per-class compiled ``capture_units`` vs ``_flatten`` on event objects;
* synthetic event streams for all 32 classes through the capture engine
  vs the legacy fuser+packer pipeline, under ENC_FULL and ENC_DIFF, for
  all three packers, with shared-counter equality;
* the packer append-raw entry vs ``pack_cycle`` on identical items;
* end-to-end co-simulations (all ladder configs, multi-core, restricted
  event sets) with a wire tap asserting frame-level byte identity;
* fallback triggers: replay capture, obs instrumentation, armed faults,
  order-coupled fusion — each recorded in ``capture_fallbacks`` and
  knob-independent;
* fast x JIT x slicing stitched identity;
* the monitor enable-memo staleness regression (config reassignment
  between runs must invalidate the per-class cache).
"""

import random
import struct

import pytest

from repro.comm.fastcapture import FastCaptureEngine, fallback_reasons
from repro.comm.fusion.differencing import DIFF_MIN_PAYLOAD
from repro.comm.fusion.squash import SquashFuser
from repro.comm.packing import (
    BatchPacker,
    DpicPacker,
    FixedLayout,
    FixedPacker,
    WireItem,
)
from repro.core import (
    CONFIG_B,
    CONFIG_BN,
    CONFIG_BNSD,
    CONFIG_COUPLED,
    CONFIG_FIXED,
    CONFIG_Z,
    CoSimulation,
)
from repro.dut import NUTSHELL, XIANGSHAN_DEFAULT, XIANGSHAN_DUAL, \
    fault_by_name
from repro.dut.config import DutConfig
from repro.dut.monitor import Monitor
from repro.events import (
    FLAG_SKIP,
    InstrCommit,
    LoadEvent,
    all_event_classes,
    generic_capture_units,
)
from repro.isa import assemble
from repro.isa.const import DRAM_BASE
from repro.isa.state import ArchState
from repro.obs import ObsContext
from repro.parallel import epoch_for, sliced_run
from repro.toolkit import render_report
from repro.workloads import build

SEED = 0xFA57_CA97

WORKLOAD = """
_start:
    li sp, 0x80100000
    li t0, 200
    li t1, 0
loop:
    add t1, t1, t0
    sd t1, -8(sp)
    ld t2, -8(sp)
    add t1, t1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""

PACKERS = ("dpic", "batch", "fixed")
LADDER = (CONFIG_Z, CONFIG_B, CONFIG_BN, CONFIG_BNSD, CONFIG_FIXED)


def _element_limit(code):
    return (1 << (8 * struct.calcsize("<" + code))) - 1


def _random_kwargs(cls, rng):
    kwargs = {}
    for spec in cls.FIELDS:
        limit = _element_limit(spec.code)
        if spec.count == 1:
            kwargs[spec.name] = rng.randint(0, limit)
        else:
            kwargs[spec.name] = tuple(
                rng.randint(0, limit) for _ in range(spec.count))
    return kwargs


# ----------------------------------------------------------------------
# Compiled capture_units vs object flattening
# ----------------------------------------------------------------------

@pytest.mark.parametrize("cls", all_event_classes(),
                         ids=lambda c: c.__name__)
def test_capture_units_matches_flatten(cls):
    rng = random.Random(SEED ^ cls.DESCRIPTOR.event_id)
    for _ in range(5):
        kwargs = _random_kwargs(cls, rng)
        units = cls._CAPTURE_UNITS(**kwargs)
        event = cls(core_id=1, order_tag=7, **kwargs)
        assert list(units) == list(event._flatten())
        assert units == generic_capture_units(cls, **kwargs)
        # The units round-trip through the struct like the object encoding.
        assert cls._STRUCT.pack(*units) == event.encode_payload()


def test_capture_units_rejects_unknown_and_short_fields():
    with pytest.raises(TypeError):
        InstrCommit._CAPTURE_UNITS(pc=4, bogus=1)
    array_cls = next(cls for cls in all_event_classes()
                     if any(spec.count > 1 for spec in cls.FIELDS))
    spec = next(spec for spec in array_cls.FIELDS if spec.count > 1)
    with pytest.raises(ValueError):
        array_cls._CAPTURE_UNITS(**{spec.name: (1, 2)})


def test_capture_units_defaults_match_default_event():
    for cls in all_event_classes():
        event = cls(core_id=0, order_tag=0)
        assert list(cls._CAPTURE_UNITS()) == list(event._flatten())


# ----------------------------------------------------------------------
# Synthetic streams: engine vs legacy fuser+packer, per class
# ----------------------------------------------------------------------

class _MonitorShim:
    """The two attributes ``emitter_table`` reads off a monitor."""

    def __init__(self, config, core_id):
        self.config = config
        self.core_id = core_id


def _make_packer(name, cores=2):
    if name == "batch":
        return BatchPacker(4096)
    if name == "fixed":
        return FixedPacker(FixedLayout(all_event_classes(), cores))
    return DpicPacker()


def _legacy_wire(stream, packer_name, squash, differencing, cores=2,
                 flush_each_cycle=False):
    """Drive (cls, core, tag, kwargs) bundles through the object path."""
    packer = _make_packer(packer_name, cores)
    fuser = SquashFuser(differencing=differencing) if squash else None
    wire = []

    def send(items):
        if items:
            wire.extend(bytes(t.data) for t in packer.pack_cycle(items))

    for bundles in stream:
        for bundle in bundles:
            events = [cls(core_id=core, order_tag=tag, **kwargs)
                      for cls, core, tag, kwargs in bundle]
            if not events:
                continue
            if fuser is not None:
                send(fuser.on_cycle(events))
            else:
                send([WireItem.from_event(event) for event in events])
        if flush_each_cycle and fuser is not None:
            send(fuser.flush())
    if fuser is not None:
        send(fuser.flush())
    wire.extend(bytes(t.data) for t in packer.flush())
    return wire, fuser


def _fast_wire(stream, packer_name, squash, differencing, cores=2,
               flush_each_cycle=False):
    """Drive the same bundles through the straight-to-wire engine."""
    packer = _make_packer(packer_name, cores)
    fuser = SquashFuser(differencing=differencing) if squash else None
    engine = FastCaptureEngine(fuser, packer)
    tables = [engine.emitter_table(_MonitorShim(XIANGSHAN_DUAL, core))
              for core in range(cores)]
    wire = []
    for bundles in stream:
        for bundle in bundles:
            engine.begin_bundle()
            for cls, core, tag, kwargs in bundle:
                tables[core][cls](tag, **kwargs)
            wire.extend(bytes(t.data) for t in engine.end_bundle())
        if flush_each_cycle and fuser is not None:
            wire.extend(bytes(t.data) for t in engine.flush())
    wire.extend(bytes(t.data) for t in engine.flush())
    wire.extend(bytes(t.data) for t in packer.flush())
    return wire, fuser


def _single_class_stream(cls, instances=12, cores=2, mutate=True):
    """Successive near-identical instances: a diff-eligible class takes
    the ENC_DIFF path from the second instance on."""
    rng = random.Random(SEED ^ (cls.DESCRIPTOR.event_id << 8))
    base = _random_kwargs(cls, rng)
    scalar = next((s for s in cls.FIELDS if s.count == 1), None)
    stream = []
    for tag in range(instances):
        kwargs = dict(base)
        if mutate and scalar is not None:
            kwargs[scalar.name] = rng.randint(0, _element_limit(scalar.code))
        stream.append([[(cls, tag % cores, tag, kwargs)]])
    return stream


def _fusion_counters(fuser):
    if fuser is None:
        return None
    stats = fuser.stats
    counters = (stats.events_in, stats.events_out, stats.commits_in,
                stats.fused_commits_out, stats.nde_sent_ahead,
                stats.fusion_breaks)
    diff = fuser.differencer
    if diff is not None:
        counters += (diff.full_sent, diff.diff_sent, diff.bytes_saved,
                     {k: list(v) for k, v in diff._last.items()})
    return counters


@pytest.mark.parametrize("cls", all_event_classes(),
                         ids=lambda c: c.__name__)
def test_single_class_stream_identity_all_packers(cls):
    """Every event class, through every packer, with differencing on and
    off (per-cycle flushes chain ENC_DIFF for the large classes)."""
    stream = _single_class_stream(cls)
    for packer_name in PACKERS:
        for differencing in (False, True):
            legacy, lf = _legacy_wire(stream, packer_name, True,
                                      differencing, flush_each_cycle=True)
            fast, ff = _fast_wire(stream, packer_name, True, differencing,
                                  flush_each_cycle=True)
            assert legacy == fast, (packer_name, differencing)
            assert _fusion_counters(lf) == _fusion_counters(ff)


def test_diff_eligible_classes_actually_take_diff_path():
    """The matrix above must exercise ENC_DIFF, not vacuously pass."""
    diffed = 0
    for cls in all_event_classes():
        if cls._STRUCT.size < DIFF_MIN_PAYLOAD:
            continue
        stream = _single_class_stream(cls)
        _, fuser = _fast_wire(stream, "batch", True, True,
                              flush_each_cycle=True)
        assert fuser.differencer.diff_sent > 0, cls.__name__
        diffed += 1
    assert diffed >= 5


@pytest.mark.parametrize("packer_name", PACKERS)
@pytest.mark.parametrize("squash", [False, True], ids=["nofuse", "squash"])
def test_mixed_stream_identity(packer_name, squash):
    """Seeded random multi-class, multi-core bundles (NDE commits, MMIO
    loads, window-filling commit runs all arise from the random fields)."""
    rng = random.Random(SEED)
    classes = all_event_classes()
    stream = []
    tag = 0
    for _ in range(60):
        bundles = []
        for core in range(2):
            bundle = []
            for _ in range(rng.randint(0, 4)):
                cls = rng.choice(classes)
                bundle.append((cls, core, tag, _random_kwargs(cls, rng)))
                tag += 1
            bundles.append(bundle)
        stream.append(bundles)
    legacy, lf = _legacy_wire(stream, packer_name, squash, squash)
    fast, ff = _fast_wire(stream, packer_name, squash, squash)
    assert legacy == fast
    assert _fusion_counters(lf) == _fusion_counters(ff)


def test_commit_window_fill_flushes_identically():
    """More commits than the fusion window: the fused-commit flush (and
    its fused_count patch) must land at the same bundle boundary."""
    stream = []
    for tag in range(100):
        stream.append([[(InstrCommit, 0, tag,
                         dict(pc=0x80000000 + 4 * tag, instr=0x13,
                              wdata=tag, rd=5, flags=0, fused_count=1))]])
    for packer_name in PACKERS:
        legacy, lf = _legacy_wire(stream, packer_name, True, True)
        fast, ff = _fast_wire(stream, packer_name, True, True)
        assert legacy == fast, packer_name
        assert _fusion_counters(lf) == _fusion_counters(ff)
        assert lf.stats.fused_commits_out >= 3


def test_nde_routing_matches_is_nde_predicates():
    """The engine's inlined NDE checks must agree with ``is_nde()`` —
    this pins the flat-index/flag assumptions the emitters bake in."""
    rng = random.Random(SEED)
    for cls in all_event_classes():
        for _ in range(8):
            kwargs = _random_kwargs(cls, rng)
            event = cls(core_id=0, order_tag=0, **kwargs)
            units = cls._CAPTURE_UNITS(**kwargs)
            if cls is InstrCommit:
                inline = bool(units[4] & FLAG_SKIP)
            elif cls is LoadEvent:
                mmio_index = sum(
                    spec.count for spec in
                    cls.FIELDS[:[s.name for s in cls.FIELDS].index("mmio")])
                inline = bool(units[mmio_index])
            else:
                inline = cls.DESCRIPTOR.is_nde
            assert inline == event.is_nde(), cls.__name__


# ----------------------------------------------------------------------
# Packer append-raw entry vs pack_cycle
# ----------------------------------------------------------------------

@pytest.mark.parametrize("packer_name", PACKERS)
def test_append_api_matches_pack_cycle(packer_name):
    rng = random.Random(SEED ^ 77)
    classes = all_event_classes()
    cycles = []
    for _ in range(30):
        items = []
        for tag in range(rng.randint(0, 6)):
            cls = rng.choice(classes)
            event = cls(core_id=rng.randrange(2), order_tag=tag,
                        **_random_kwargs(cls, rng))
            items.append((cls, WireItem.from_event(event)))
        cycles.append(items)
    buffered = _make_packer(packer_name)
    direct = _make_packer(packer_name)
    wire_a, wire_b = [], []
    for items in cycles:
        wire_a.extend(bytes(t.data)
                      for t in buffered.pack_cycle([i for _, i in items]))
        direct.begin_append()
        for cls, item in items:
            if item.order_tag % 2:
                direct.append_raw(item.type_id, item.core_id,
                                  item.order_tag, item.payload,
                                  item.encoding)
            else:
                direct.append_units(cls, item.core_id, item.order_tag,
                                    cls._STRUCT.unpack(item.payload))
        wire_b.extend(bytes(t.data) for t in direct.end_append())
    wire_a.extend(bytes(t.data) for t in buffered.flush())
    wire_b.extend(bytes(t.data) for t in direct.flush())
    assert wire_a == wire_b
    assert buffered.stats.payload_bytes == direct.stats.payload_bytes
    assert buffered.stats.meta_bytes == direct.stats.meta_bytes


# ----------------------------------------------------------------------
# End-to-end co-simulation identity (wire tap)
# ----------------------------------------------------------------------

def _run_tapped(config, dut=XIANGSHAN_DEFAULT, source=WORKLOAD, image=None,
                fault=None, trigger=300, obs=None, max_cycles=60_000):
    cosim = CoSimulation(dut, config,
                         image if image is not None else assemble(source),
                         obs=obs)
    if fault is not None:
        fault_by_name(fault).install(cosim.dut.cores[0], trigger)
    wire = []
    send_all = cosim.channel.send_all

    def tap(transfers):
        wire.extend(bytes(t.data) for t in transfers)
        return send_all(transfers)

    cosim.channel.send_all = tap
    result = cosim.run(max_cycles=max_cycles)
    return result, wire, cosim


def _assert_identical(fast, legacy):
    assert render_report(fast.stats) == render_report(legacy.stats)
    assert fast.summarize() == legacy.summarize()
    assert fast.exit_code == legacy.exit_code
    assert fast.uart_output == legacy.uart_output
    assert fast.stats.capture_fallbacks == legacy.stats.capture_fallbacks


@pytest.mark.parametrize("config", LADDER, ids=lambda c: c.name)
def test_run_wire_identity_all_ladder_configs(config):
    cfg = config.with_(replay=False)
    fast, fast_wire, cosim = _run_tapped(cfg)
    legacy, legacy_wire, _ = _run_tapped(cfg.with_(fast_capture=False))
    assert fast.passed and legacy.passed
    assert fast_wire == legacy_wire
    _assert_identical(fast, legacy)
    assert cosim._capture is not None  # the fast tier actually engaged
    assert fast.stats.capture_fallbacks == ()


def test_run_wire_identity_multicore():
    cfg = CONFIG_BNSD.with_(replay=False)
    fast, fast_wire, _ = _run_tapped(cfg, dut=XIANGSHAN_DUAL)
    legacy, legacy_wire, _ = _run_tapped(cfg.with_(fast_capture=False),
                                         dut=XIANGSHAN_DUAL)
    assert fast_wire == legacy_wire
    _assert_identical(fast, legacy)


def test_run_wire_identity_restricted_event_set():
    """NutShell's 6-event coverage: disabled classes must be absent from
    the emitter table, not merely dropped late."""
    cfg = CONFIG_BNSD.with_(replay=False)
    workload = build("memory_churn", array_kb=8, passes=1)
    fast, fast_wire, cosim = _run_tapped(cfg, dut=NUTSHELL,
                                         image=workload.image,
                                         max_cycles=4500)
    legacy, legacy_wire, _ = _run_tapped(cfg.with_(fast_capture=False),
                                         dut=NUTSHELL,
                                         image=workload.image,
                                         max_cycles=4500)
    assert fast_wire == legacy_wire
    _assert_identical(fast, legacy)
    table = cosim.dut.cores[0].monitor._fast_emitters
    assert {cls.__name__ for cls in table} == set(NUTSHELL.event_set)


def test_run_identity_with_stalls_and_interrupts():
    workload = build("memory_churn", array_kb=8, passes=1)
    cfg = CONFIG_BNSD.with_(replay=False)
    fast, fast_wire, _ = _run_tapped(cfg, image=workload.image,
                                     max_cycles=6000)
    legacy, legacy_wire, _ = _run_tapped(cfg.with_(fast_capture=False),
                                         image=workload.image,
                                         max_cycles=6000)
    assert fast_wire == legacy_wire
    _assert_identical(fast, legacy)


def test_mismatch_detected_identically_without_replay():
    """A mismatching run (no replay => still fast-eligible) must produce
    the same mismatch from the fast wire stream."""
    cfg = CONFIG_BNSD.with_(replay=False)
    fast, _, cosim = _run_tapped(cfg, fault="sbuffer_lost_bytes")
    legacy, _, _ = _run_tapped(cfg.with_(fast_capture=False),
                               fault="sbuffer_lost_bytes")
    # The armed fault forces the object path: identical by construction,
    # which is exactly the guarantee the fallback exists to give.
    assert cosim._capture is None
    assert fast.stats.capture_fallbacks == ("faults",)
    assert fast.mismatch is not None and legacy.mismatch is not None
    assert fast.summarize().mismatch == legacy.summarize().mismatch
    _assert_identical(fast, legacy)


# ----------------------------------------------------------------------
# Fallback triggers
# ----------------------------------------------------------------------

def test_fallback_replay():
    cfg = CONFIG_BNSD  # replay=True by default
    fast, fast_wire, cosim = _run_tapped(cfg)
    legacy, legacy_wire, _ = _run_tapped(cfg.with_(fast_capture=False))
    assert cosim._capture is None
    assert fast.stats.capture_fallbacks == ("replay",)
    assert fast_wire == legacy_wire
    _assert_identical(fast, legacy)


def test_fallback_obs_and_snapshot_knob_independence():
    cfg = CONFIG_BNSD.with_(replay=False)
    fast, _, cosim = _run_tapped(cfg, obs=ObsContext())
    legacy, _, _ = _run_tapped(cfg.with_(fast_capture=False),
                               obs=ObsContext())
    assert cosim._capture is None
    assert fast.stats.capture_fallbacks == ("obs",)
    assert fast.metrics.value("capture.fallback.obs") == 1
    # Knob-independent: identical snapshots with the knob on or off.
    assert fast.metrics.records() == legacy.metrics.records()


def test_fallback_order_coupled():
    cfg = CONFIG_COUPLED.with_(replay=False)
    fast, fast_wire, cosim = _run_tapped(cfg)
    legacy, legacy_wire, _ = _run_tapped(cfg.with_(fast_capture=False))
    assert cosim._capture is None
    assert fast.stats.capture_fallbacks == ("order_coupled",)
    assert fast_wire == legacy_wire
    _assert_identical(fast, legacy)


def test_fallback_reasons_canonical_order_and_hooks():
    cfg = CONFIG_COUPLED  # squash + order_coupled + replay default
    cosim = CoSimulation(XIANGSHAN_DEFAULT, cfg, assemble(WORKLOAD))
    fault_by_name("control_flow_wdata").install(cosim.dut.cores[0], 100)
    reasons = fallback_reasons(cfg, True, cosim.dut.cores)
    assert reasons == ["obs", "replay", "faults", "order_coupled"]
    clean = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD.with_(replay=False),
                         assemble(WORKLOAD))
    assert fallback_reasons(clean.diff_config, False, clean.dut.cores) == []


def test_fallbacks_recorded_even_with_knob_off():
    cfg = CONFIG_BNSD.with_(fast_capture=False)  # replay on, knob off
    result, _, _ = _run_tapped(cfg)
    assert result.stats.capture_fallbacks == ("replay",)


# ----------------------------------------------------------------------
# fast x JIT x slicing
# ----------------------------------------------------------------------

def test_run_identity_with_jit():
    workload = build("memory_churn", array_kb=8, passes=1)
    cfg = CONFIG_BNSD.with_(replay=False, jit=True, jit_warmup=2)
    fast, fast_wire, cosim = _run_tapped(cfg, image=workload.image,
                                         max_cycles=4500)
    legacy, legacy_wire, _ = _run_tapped(cfg.with_(fast_capture=False),
                                         image=workload.image,
                                         max_cycles=4500)
    assert cosim._capture is not None
    assert cosim.dut.cores[0].jit.stats.hits > 0  # both tiers engaged
    assert fast_wire == legacy_wire
    _assert_identical(fast, legacy)


def test_sliced_run_identity_with_fast_capture():
    workload = build("memory_churn", array_kb=8, passes=1)
    max_cycles = 4500
    cfg = CONFIG_BNSD.with_(replay=False, jit=True, jit_warmup=4)
    serial = CoSimulation(
        NUTSHELL, cfg.with_(slice_epoch_cycles=epoch_for(max_cycles, 3)),
        workload.image, seed=2025,
        uart_input=workload.uart_input).run(max_cycles)
    sliced = sliced_run(NUTSHELL, cfg, workload.image,
                        max_cycles=max_cycles, slices=3, seed=2025,
                        uart_input=workload.uart_input)
    assert sliced.passed
    assert render_report(serial.stats) == render_report(sliced.stats)
    assert serial.summarize() == sliced.summary
    assert serial.stats.capture_fallbacks == ()


def test_sliced_fast_matches_sliced_legacy():
    workload = build("memory_churn", array_kb=8, passes=1)
    cfg = CONFIG_BNSD.with_(replay=False)
    fast = sliced_run(NUTSHELL, cfg, workload.image, max_cycles=4500,
                      slices=3, seed=2025, uart_input=workload.uart_input)
    legacy = sliced_run(NUTSHELL, cfg.with_(fast_capture=False),
                        workload.image, max_cycles=4500, slices=3,
                        seed=2025, uart_input=workload.uart_input)
    assert fast.passed and legacy.passed
    assert render_report(fast.stats) == render_report(legacy.stats)
    assert fast.summary == legacy.summary


# ----------------------------------------------------------------------
# Monitor enable-memo staleness (regression) and engine rebinding
# ----------------------------------------------------------------------

def _monitor(config):
    return Monitor(config, core_id=0, state=ArchState(0, DRAM_BASE))


def test_enable_memo_invalidated_on_config_change():
    """Reassigning ``monitor.config`` between runs must drop the
    per-class enable memo (it caches the *previous* config's answers)."""
    monitor = _monitor(XIANGSHAN_DEFAULT)
    out = []
    monitor._emit(out, LoadEvent, tag=0, paddr=8, data=1, op_type=3,
                  fu_type=0, mmio=0)
    assert len(out) == 1  # memoised as enabled
    restricted = DutConfig(name="only-commit", commit_width=1,
                           gates_millions=1.0, event_set=("InstrCommit",))
    monitor.config = restricted
    out2 = []
    monitor._emit(out2, LoadEvent, tag=1, paddr=8, data=1, op_type=3,
                  fu_type=0, mmio=0)
    assert out2 == []  # stale memo would have emitted
    monitor._emit(out2, InstrCommit, tag=2, pc=4, instr=0x13, wdata=0,
                  rd=0, flags=0, fused_count=1)
    assert len(out2) == 1


def test_enable_memo_reenable_direction():
    restricted = DutConfig(name="only-commit", commit_width=1,
                           gates_millions=1.0, event_set=("InstrCommit",))
    monitor = _monitor(restricted)
    out = []
    monitor._emit(out, LoadEvent, tag=0, paddr=8, data=1, op_type=3,
                  fu_type=0, mmio=0)
    assert out == []  # memoised as disabled
    monitor.config = XIANGSHAN_DEFAULT
    monitor._emit(out, LoadEvent, tag=1, paddr=8, data=1, op_type=3,
                  fu_type=0, mmio=0)
    assert len(out) == 1


def test_config_change_rebinds_fast_emitter_table():
    engine = FastCaptureEngine(None, DpicPacker())
    monitor = _monitor(XIANGSHAN_DEFAULT)
    monitor.attach_fast_capture(engine)
    assert LoadEvent in monitor._fast_emitters
    restricted = DutConfig(name="only-commit", commit_width=1,
                           gates_millions=1.0, event_set=("InstrCommit",))
    monitor.config = restricted
    assert LoadEvent not in monitor._fast_emitters
    assert InstrCommit in monitor._fast_emitters
    before = monitor.fast_events
    monitor._emit([], LoadEvent, tag=0, paddr=8, data=1, op_type=3,
                  fu_type=0, mmio=0)
    assert monitor.fast_events == before  # disabled: dropped, not counted
    monitor.detach_fast_capture()
    out = []
    monitor._emit(out, InstrCommit, tag=1, pc=4, instr=0x13, wdata=0,
                  rd=0, flags=0, fused_count=1)
    assert len(out) == 1  # detached: the object path is back
