"""Tests for the LogGP model, platforms, channel, and prior-work models."""

import pytest

from repro.comm import (
    FPGA_VU19P,
    PALLADIUM,
    VERILATOR_16T,
    Channel,
    CommCounters,
    model_overhead,
)
from repro.comm.packing.base import Transfer
from repro.comm.prior import FROMAJO, IBI_CHECK, PRIOR_SCHEMES, SBS_CHECK


class TestLogGpModel:
    def _counters(self, **kw):
        base = dict(cycles=1000, instructions=1200, invokes=2000,
                    bytes_sent=100_000, sw_dispatches=2000,
                    sw_events_checked=3000, sw_bytes_checked=200_000,
                    sw_ref_steps=1200)
        base.update(kw)
        return CommCounters(**base)

    def test_blocking_sums_phases(self):
        counters = self._counters()
        result = model_overhead(FPGA_VU19P, 57.6, counters, nonblocking=False)
        assert result.total_us == pytest.approx(
            result.dut_us + result.startup_us + result.transmission_us
            + result.software_us)

    def test_nonblocking_takes_max(self):
        counters = self._counters()
        result = model_overhead(FPGA_VU19P, 57.6, counters, nonblocking=True)
        hw_link = (result.startup_us + result.transmission_us)
        assert result.total_us == pytest.approx(
            max(result.dut_us, hw_link, result.software_us))

    def test_nonblocking_never_slower(self):
        counters = self._counters()
        blocking = model_overhead(PALLADIUM, 57.6, counters, False)
        nonblocking = model_overhead(PALLADIUM, 57.6, counters, True)
        assert nonblocking.total_us <= blocking.total_us

    def test_gate_cycles_charged_only_when_blocking(self):
        counters = self._counters(invokes=0, bytes_sent=0, sw_dispatches=0,
                                  sw_events_checked=0, sw_bytes_checked=0,
                                  sw_ref_steps=0)
        blocking = model_overhead(PALLADIUM, 57.6, counters, False)
        nonblocking = model_overhead(PALLADIUM, 57.6, counters, True)
        assert blocking.startup_us > 0  # per-cycle gate
        assert nonblocking.total_us == pytest.approx(nonblocking.dut_us)

    def test_speed_khz(self):
        counters = CommCounters(cycles=1000)
        result = model_overhead(FPGA_VU19P, 0.0, counters, False)
        assert result.speed_khz == pytest.approx(
            FPGA_VU19P.dut_clock_khz(0.0))

    def test_phase_fractions_sum_to_one(self):
        result = model_overhead(PALLADIUM, 57.6, self._counters(), False)
        assert sum(result.phase_fractions().values()) == pytest.approx(1.0)

    def test_communication_fraction(self):
        result = model_overhead(PALLADIUM, 57.6, self._counters(), False)
        assert 0 < result.communication_fraction < 1

    def test_counters_merge(self):
        a = self._counters()
        b = self._counters()
        a.merge(b)
        assert a.cycles == 2000
        assert a.bytes_sent == 200_000


class TestPlatforms:
    def test_clock_decreases_with_design_size(self):
        for platform in (PALLADIUM, FPGA_VU19P, VERILATOR_16T):
            assert platform.dut_clock_khz(0.6) > platform.dut_clock_khz(57.6)

    def test_table2_anchor_speeds(self):
        # Table 2: RTL sim ~3 KHz, emulator ~500 KHz, FPGA ~50 MHz for a
        # large design (XiangShan Default, 57.6 M gates).
        assert 2 <= VERILATOR_16T.dut_clock_khz(57.6) <= 8
        assert 300 <= PALLADIUM.dut_clock_khz(57.6) <= 700
        assert 30_000 <= FPGA_VU19P.dut_clock_khz(57.6) <= 60_000

    def test_fpga_higher_startup_lower_transmission_than_palladium(self):
        # Section 3.2: PCIe shows higher handshake latency but more
        # bandwidth than Palladium's internal link (per data transfer,
        # relative to the platform's cycle time).
        assert FPGA_VU19P.bw_bytes_per_us > PALLADIUM.bw_bytes_per_us
        pldm_cycle = 1000 / PALLADIUM.dut_clock_khz(57.6)
        fpga_cycle = 1000 / FPGA_VU19P.dut_clock_khz(57.6)
        assert (FPGA_VU19P.t_sync_us / fpga_cycle
                > PALLADIUM.t_sync_us / pldm_cycle)


class TestChannel:
    def test_counters(self):
        channel = Channel()
        channel.send(Transfer(b"abc", items=1))
        channel.send(Transfer(b"defg", items=2))
        assert channel.invokes == 2
        assert channel.bytes_sent == 7

    def test_fifo_order(self):
        channel = Channel()
        channel.send(Transfer(b"1"))
        channel.send(Transfer(b"2"))
        assert channel.receive().data == b"1"
        assert channel.receive().data == b"2"
        assert channel.receive() is None

    def test_occupancy_tracking(self):
        channel = Channel(nonblocking=True, queue_depth=2)
        for i in range(4):
            channel.send(Transfer(bytes([i])))
        assert channel.max_occupancy == 4
        # Sends landing at occupancy 2 (exactly full), 3 and 4 all stall.
        assert channel.backpressure_events == 3

    def test_backpressure_fires_exactly_at_depth(self):
        channel = Channel(nonblocking=True, queue_depth=3)
        for i in range(3):
            channel.send(Transfer(bytes([i])))
        assert channel.backpressure_events == 1

    def test_blocking_mode_ignores_queue_depth(self):
        channel = Channel(nonblocking=False, queue_depth=1)
        for i in range(5):
            channel.send(Transfer(bytes([i])))
        assert channel.backpressure_events == 0

    def test_drain(self):
        channel = Channel()
        channel.send(Transfer(b"x"))
        assert len(channel.drain()) == 1
        assert len(channel) == 0


class TestPriorWork:
    def test_table7_anchors(self):
        ibi = IBI_CHECK.evaluate(100_000, 1.0)
        sbs = SBS_CHECK.evaluate(100_000, 1.0)
        fromajo = FROMAJO.evaluate(100_000, 1.0)
        # IBI-check: ~80 KHz at ~20% overhead on a 100 KHz emulator.
        assert 60 <= ibi.cosim_speed_khz <= 95
        assert 0.10 <= ibi.comm_overhead <= 0.30
        # SBS-check: ~98 KHz at ~2% overhead.
        assert 95 <= sbs.cosim_speed_khz <= 100
        assert sbs.comm_overhead <= 0.05
        # Fromajo: ~1 MHz on a 100 MHz FPGA (=99% overhead).
        assert 500 <= fromajo.cosim_speed_khz <= 2000
        assert fromajo.comm_overhead >= 0.95

    def test_scheme_coverage_metadata(self):
        assert IBI_CHECK.state_types == 2
        assert FROMAJO.state_types == 7
        assert len(PRIOR_SCHEMES) == 3
