"""Tests for the CSR file: masks, view registers, snapshots, journaling."""

import pytest

from repro.isa import csr as CSR
from repro.isa.csr import CsrFile, IllegalCsr


@pytest.fixture()
def csrs():
    return CsrFile(hart_id=3)


class TestBasics:
    def test_reset_values(self, csrs):
        assert csrs.read(CSR.MHARTID) == 3
        assert csrs.read(CSR.MSTATUS) == 0
        assert csrs.read(CSR.VLENB) == 32
        assert csrs.read(CSR.MISA) >> 62 == 2  # MXL=64

    def test_plain_write_read(self, csrs):
        csrs.write(CSR.MSCRATCH, 0xDEAD)
        assert csrs.read(CSR.MSCRATCH) == 0xDEAD

    def test_unimplemented_raises(self, csrs):
        with pytest.raises(IllegalCsr):
            csrs.read(0x123)
        with pytest.raises(IllegalCsr):
            csrs.write(0x123, 1)

    def test_readonly_mask_ignores_writes(self, csrs):
        csrs.write(CSR.MISA, 0)
        assert csrs.read(CSR.MISA) != 0
        csrs.write(CSR.MHARTID, 9)
        assert csrs.read(CSR.MHARTID) == 3

    def test_counter_views_not_writable(self, csrs):
        with pytest.raises(IllegalCsr):
            csrs.write(CSR.CYCLE, 5)

    def test_force_bypasses_masks(self, csrs):
        csrs.force(CSR.MHARTID, 9)
        assert csrs.peek(CSR.MHARTID) == 9


class TestViews:
    def test_sstatus_is_masked_mstatus(self, csrs):
        csrs.write(CSR.MSTATUS, 0x8)  # MIE: machine-only bit
        assert csrs.read(CSR.SSTATUS) & 0x8 == 0
        csrs.write(CSR.SSTATUS, 0x2)  # SIE: shared bit
        assert csrs.read(CSR.MSTATUS) & 0x2
        assert csrs.read(CSR.SSTATUS) & 0x2

    def test_sstatus_write_preserves_m_bits(self, csrs):
        csrs.write(CSR.MSTATUS, 0x8)
        csrs.write(CSR.SSTATUS, 0)
        assert csrs.read(CSR.MSTATUS) & 0x8

    def test_sie_aliases_mie(self, csrs):
        csrs.write(CSR.SIE, 0x222)
        assert csrs.read(CSR.MIE) == 0x222
        csrs.write(CSR.MIE, 0xAAA)
        assert csrs.read(CSR.SIE) == 0x222  # only S bits visible

    def test_sie_cannot_touch_m_bits(self, csrs):
        csrs.write(CSR.MIE, 0x888)  # M-level bits
        csrs.write(CSR.SIE, 0)
        assert csrs.read(CSR.MIE) == 0x888

    def test_sip_only_ssip_writable(self, csrs):
        csrs.write(CSR.SIP, 0x222)
        assert csrs.peek(CSR.MIP) == 0x2  # only SSIP landed
        csrs.force(CSR.MIP, 0x20)  # STIP set by hardware
        assert csrs.read(CSR.SIP) & 0x20

    def test_fflags_frm_slices_of_fcsr(self, csrs):
        csrs.write(CSR.FCSR, 0xFF)
        assert csrs.read(CSR.FFLAGS) == 0x1F
        assert csrs.read(CSR.FRM) == 0x7
        csrs.write(CSR.FRM, 0x3)
        assert csrs.read(CSR.FCSR) == 0x7F
        csrs.write(CSR.FFLAGS, 0)
        assert csrs.read(CSR.FCSR) == 0x60


class TestSnapshot:
    def test_snapshot_resolves_views(self, csrs):
        csrs.write(CSR.MIE, 0x222)
        csrs.write(CSR.MSTATUS, 0x2)
        snapshot = csrs.snapshot((CSR.SIE, CSR.SSTATUS))
        assert snapshot == (0x222, 0x2)

    def test_snapshot_pads(self, csrs):
        assert len(csrs.snapshot((CSR.MSTATUS,), pad_to=8)) == 8

    def test_checked_csrs_snapshot_stable_order(self, csrs):
        a = csrs.snapshot(CSR.CHECKED_CSRS)
        csrs.write(CSR.MSCRATCH, 7)
        b = csrs.snapshot(CSR.CHECKED_CSRS)
        index = CSR.CHECKED_CSRS.index(CSR.MSCRATCH)
        assert a[index] == 0 and b[index] == 7
        assert a[:index] == b[:index]


class TestJournal:
    class _Journal:
        def __init__(self):
            self.records = []

        def record_csr(self, addr, old):
            self.records.append((addr, old))

    def test_writes_journaled_with_old_value(self, csrs):
        journal = self._Journal()
        csrs.journal = journal
        csrs.write(CSR.MSCRATCH, 1)
        csrs.write(CSR.MSCRATCH, 2)
        assert journal.records == [(CSR.MSCRATCH, 0), (CSR.MSCRATCH, 1)]

    def test_noop_writes_not_journaled(self, csrs):
        journal = self._Journal()
        csrs.journal = journal
        csrs.write(CSR.MSCRATCH, 0)  # same as reset value
        assert journal.records == []
