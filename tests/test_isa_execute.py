"""Tests for the functional hart: instruction semantics, traps, interrupts."""


from repro.isa import (
    ArchState,
    Bus,
    Hart,
    assemble,
    attach_standard_devices,
)
from repro.isa import csr as CSR
from repro.isa.const import (
    DRAM_BASE,
    EXC_BREAKPOINT,
    EXC_ECALL_M,
    EXC_ECALL_U,
    EXC_ILLEGAL,
    INTERRUPT_BIT,
    IRQ_M_TIMER,
    MASK64,
    PRIV_M,
    PRIV_U,
)


def make_hart(source: str, devices: bool = False):
    state = ArchState()
    bus = Bus()
    if devices:
        attach_standard_devices(bus)
    bus.memory.store_bytes(DRAM_BASE, assemble(source))
    return Hart(state, bus), state


def run(source: str, steps: int = 10_000, devices: bool = False):
    """Run until ebreak-finish; returns the final state."""
    hart, state = make_hart(source, devices)
    for _ in range(steps):
        result = hart.step()
        if result.trap_finish is not None:
            return state, result
    raise AssertionError(f"did not finish; pc={state.pc:#x}")


def run_expr(body: str, steps: int = 10_000):
    """Run a snippet, then `li a0,0; ebreak`; returns final state."""
    return run(body + "\n li a0, 0\n ebreak")[0]


def step_until(hart, predicate, limit: int = 200):
    """Step until ``predicate(result)`` is true; returns that result."""
    for _ in range(limit):
        result = hart.step()
        if predicate(result):
            return result
    raise AssertionError("condition never reached")


class TestAlu:
    def test_add_sub(self):
        s = run_expr("li t0, 5\n li t1, 7\n add t2, t0, t1\n sub t3, t0, t1")
        assert s.xregs[7] == 12
        assert s.xregs[28] == (5 - 7) & MASK64

    def test_logical(self):
        s = run_expr("li t0, 0xF0\n li t1, 0x0F\n or t2, t0, t1\n"
                     "and t3, t0, t1\n xor t4, t0, t0")
        assert s.xregs[7] == 0xFF
        assert s.xregs[28] == 0
        assert s.xregs[29] == 0

    def test_slt_signed_unsigned(self):
        s = run_expr("li t0, -1\n li t1, 1\n slt t2, t0, t1\n sltu t3, t0, t1")
        assert s.xregs[7] == 1  # -1 < 1 signed
        assert s.xregs[28] == 0  # 0xFFFF.. > 1 unsigned

    def test_shifts_64(self):
        s = run_expr("li t0, 1\n slli t1, t0, 63\n srli t2, t1, 63\n"
                     "srai t3, t1, 63")
        assert s.xregs[6] == 1 << 63
        assert s.xregs[7] == 1
        assert s.xregs[28] == MASK64  # arithmetic shift of sign bit

    def test_w_ops_sign_extend(self):
        s = run_expr("li t0, 0x7FFFFFFF\n addiw t1, t0, 1\n"
                     "li t2, 1\n sllw t3, t2, t0")
        assert s.xregs[6] == 0xFFFFFFFF80000000  # 0x80000000 sext
        assert s.xregs[28] == 0xFFFFFFFF80000000  # shift amount masked to 31

    def test_x0_never_writes(self):
        s = run_expr("li t0, 5\n add x0, t0, t0")
        assert s.xregs[0] == 0


class TestMulDiv:
    def test_mul(self):
        s = run_expr("li t0, -3\n li t1, 7\n mul t2, t0, t1")
        assert s.xregs[7] == (-21) & MASK64

    def test_mulh_signed(self):
        s = run_expr("li t0, -1\n li t1, -1\n mulh t2, t0, t1")
        assert s.xregs[7] == 0  # (-1 * -1) >> 64

    def test_mulhu(self):
        s = run_expr("li t0, -1\n li t1, -1\n mulhu t2, t0, t1")
        assert s.xregs[7] == MASK64 - 1

    def test_div_truncates_toward_zero(self):
        s = run_expr("li t0, -7\n li t1, 2\n div t2, t0, t1\n rem t3, t0, t1")
        assert s.xregs[7] == (-3) & MASK64
        assert s.xregs[28] == (-1) & MASK64

    def test_div_by_zero(self):
        s = run_expr("li t0, 42\n li t1, 0\n div t2, t0, t1\n divu t3, t0, t1\n"
                     "rem t4, t0, t1\n remu t5, t0, t1")
        assert s.xregs[7] == MASK64
        assert s.xregs[28] == MASK64
        assert s.xregs[29] == 42
        assert s.xregs[30] == 42

    def test_div_overflow(self):
        s = run_expr("li t0, 0x8000000000000000\n li t1, -1\n"
                     "div t2, t0, t1\n rem t3, t0, t1")
        assert s.xregs[7] == 1 << 63
        assert s.xregs[28] == 0

    def test_divw(self):
        s = run_expr("li t0, 0x80000000\n li t1, -1\n divw t2, t0, t1")
        assert s.xregs[7] == 0xFFFFFFFF80000000


class TestMemory:
    def test_store_load_widths(self):
        s = run_expr("""
            li sp, 0x80100000
            li t0, 0x1122334455667788
            sd t0, 0(sp)
            lb t1, 0(sp)
            lbu t2, 0(sp)
            lh t3, 0(sp)
            lw t4, 0(sp)
            lwu t5, 0(sp)
            ld t6, 0(sp)
        """)
        assert s.xregs[6] == ((-0x78) & MASK64)  # 0x88 sign-extended
        assert s.xregs[7] == 0x88
        assert s.xregs[28] == 0x7788
        assert s.xregs[29] == 0x55667788
        assert s.xregs[30] == 0x55667788
        assert s.xregs[31] == 0x1122334455667788

    def test_unaligned_access_allowed(self):
        s = run_expr("li sp, 0x80100001\n li t0, 0xABCD\n sh t0, 0(sp)\n"
                     "lhu t1, 0(sp)")
        assert s.xregs[6] == 0xABCD


class TestControlFlow:
    def test_branch_taken_and_not(self):
        s = run_expr("""
            li t0, 1
            li t1, 2
            li t2, 0
            blt t0, t1, taken
            li t2, 99
        taken:
            addi t2, t2, 5
        """)
        assert s.xregs[7] == 5

    def test_jalr_clears_bit0(self):
        s = run_expr("""
            la t0, target
            ori t0, t0, 1
            jalr t1, 0(t0)
        target:
            addi t2, zero, 7
        """)
        assert s.xregs[7] == 7

    def test_call_ret(self):
        s = run_expr("""
            li sp, 0x80100000
            call fn
            j done
        fn:
            li t0, 11
            ret
        done:
            nop
        """)
        assert s.xregs[5] == 11


class TestCsrInstructions:
    def test_csrrw_swaps(self):
        s = run_expr("li t0, 0x123\n csrw mscratch, t0\n csrr t1, mscratch")
        assert s.xregs[6] == 0x123

    def test_csrrs_sets_bits(self):
        s = run_expr("li t0, 0x3\n csrw mscratch, t0\n li t1, 0xC\n"
                     "csrrs t2, mscratch, t1\n csrr t3, mscratch")
        assert s.xregs[7] == 0x3  # old value
        assert s.xregs[28] == 0xF

    def test_csrrc_clears_bits(self):
        s = run_expr("li t0, 0xF\n csrw mscratch, t0\n li t1, 0x3\n"
                     "csrrc t2, mscratch, t1\n csrr t3, mscratch")
        assert s.xregs[28] == 0xC

    def test_csr_immediates(self):
        s = run_expr("csrwi mscratch, 21\n csrr t0, mscratch")
        assert s.xregs[5] == 21

    def test_unimplemented_csr_traps(self):
        hart, state = make_hart("csrr t0, 0x123\n nop")
        result = hart.step()
        assert result.exception is not None
        assert result.exception[0] == EXC_ILLEGAL

    def test_readonly_csr_write_traps(self):
        hart, state = make_hart("csrw mhartid, zero")
        result = hart.step()
        assert result.exception is not None and result.exception[0] == EXC_ILLEGAL

    def test_minstret_counts_retired(self):
        s = run_expr("nop\n nop\n nop")
        # 3 nops + li a0 (1 instr); ebreak does not retire.
        assert s.csr.peek(CSR.MINSTRET) == 4


class TestTraps:
    def test_ecall_from_m(self):
        hart, state = make_hart("""
            la t0, handler
            csrw mtvec, t0
            ecall
        handler:
            nop
        """)
        result = step_until(hart, lambda r: r.exception is not None)
        assert result.exception == (EXC_ECALL_M, 0)
        assert state.csr.peek(CSR.MCAUSE) == EXC_ECALL_M
        assert state.csr.peek(CSR.MEPC) == result.pc

    def test_illegal_instruction_traps_with_tval(self):
        hart, state = make_hart(".word 0xFFFFFFFF")
        result = hart.step()
        assert result.exception[0] == EXC_ILLEGAL
        assert state.csr.peek(CSR.MTVAL) == 0xFFFFFFFF

    def test_mret_restores_priv_and_mie(self):
        s = run_expr("""
            la t0, after
            csrw mepc, t0
            li t0, 0x1888        # MPIE | MPP=M... set MPIE and MPP=11
            csrw mstatus, t0
            mret
        after:
            csrr t1, mstatus
        """)
        assert s.priv == PRIV_M
        assert s.xregs[6] & (1 << 3)  # MIE restored from MPIE

    def test_mret_to_user_mode(self):
        hart, state = make_hart("""
            la t0, target
            csrw mepc, t0
            csrw mstatus, zero   # MPP = U
            mret
        target:
            nop
        """)
        step_until(hart, lambda r: r.name == "mret")
        assert state.priv == PRIV_U

    def test_ecall_from_u_and_s_causes(self):
        # Enter U-mode, ecall -> M handler records cause.
        source = """
            la t0, handler
            csrw mtvec, t0
            la t0, user
            csrw mepc, t0
            csrw mstatus, zero
            mret
        user:
            ecall
        handler:
            csrr t1, mcause
            li a0, 0
            ebreak
        """
        state, _ = run(source)
        assert state.xregs[6] == EXC_ECALL_U

    def test_delegation_to_s_mode(self):
        source = """
            la t0, mhandler
            csrw mtvec, t0
            la t0, shandler
            csrw stvec, t0
            li t0, 0x100          # delegate ecall-from-U
            csrw medeleg, t0
            la t0, user
            csrw mepc, t0
            csrw mstatus, zero
            mret
        user:
            ecall
        shandler:
            csrr t1, scause
            li a0, 0
            ebreak
        mhandler:
            li a0, 1
            ebreak
        """
        state, result = run(source)
        # The S handler ran (t1 = scause = ecall-from-U); its own ebreak
        # then trapped to M as a breakpoint (ebreak only finishes in M).
        assert state.xregs[6] == EXC_ECALL_U
        assert state.csr.peek(CSR.SCAUSE) == EXC_ECALL_U
        assert state.csr.peek(CSR.SEPC) != 0

    def test_breakpoint_in_user_mode(self):
        source = """
            la t0, handler
            csrw mtvec, t0
            la t0, user
            csrw mepc, t0
            csrw mstatus, zero
            mret
        user:
            ebreak
        handler:
            csrr t1, mcause
            li a0, 0
            ebreak
        """
        state, _ = run(source)
        assert state.xregs[6] == EXC_BREAKPOINT

    def test_vectored_interrupt_dispatch(self):
        hart, state = make_hart("""
            la t0, vec
            ori t0, t0, 1        # vectored mode
            csrw mtvec, t0
            nop
        vec:
            nop
        """)
        step_until(hart, lambda r: r.name == "csrrw")
        base = state.csr.peek(CSR.MTVEC) & ~0x3
        assert base != 0
        hart.step(interrupt=IRQ_M_TIMER)
        assert state.pc == base + 4 * IRQ_M_TIMER
        assert state.csr.peek(CSR.MCAUSE) == INTERRUPT_BIT | IRQ_M_TIMER


class TestInterruptArbitration:
    def _hart(self):
        return make_hart("nop\n nop")

    def test_no_interrupt_when_disabled(self):
        hart, state = self._hart()
        hart.set_mip_bit(IRQ_M_TIMER, True)
        state.csr.force(CSR.MIE, 1 << IRQ_M_TIMER)
        # M-mode with MIE=0: masked.
        assert hart.pending_interrupt() is None

    def test_interrupt_when_enabled(self):
        hart, state = self._hart()
        hart.set_mip_bit(IRQ_M_TIMER, True)
        state.csr.force(CSR.MIE, 1 << IRQ_M_TIMER)
        state.csr.force(CSR.MSTATUS, 1 << 3)
        assert hart.pending_interrupt() == IRQ_M_TIMER

    def test_interrupt_needs_mie_bit(self):
        hart, state = self._hart()
        hart.set_mip_bit(IRQ_M_TIMER, True)
        state.csr.force(CSR.MSTATUS, 1 << 3)
        assert hart.pending_interrupt() is None

    def test_lower_priv_always_interruptible(self):
        hart, state = self._hart()
        hart.set_mip_bit(IRQ_M_TIMER, True)
        state.csr.force(CSR.MIE, 1 << IRQ_M_TIMER)
        state.priv = PRIV_U
        assert hart.pending_interrupt() == IRQ_M_TIMER


class TestAtomics:
    def test_amoadd(self):
        s = run_expr("""
            li sp, 0x80100000
            li t0, 10
            sd t0, 0(sp)
            li t1, 5
            amoadd.d t2, t1, (sp)
            ld t3, 0(sp)
        """)
        assert s.xregs[7] == 10  # old value
        assert s.xregs[28] == 15

    def test_amoswap_w_sign_extends(self):
        s = run_expr("""
            li sp, 0x80100000
            li t0, 0x80000001
            sw t0, 0(sp)
            li t1, 3
            amoswap.w t2, t1, (sp)
        """)
        assert s.xregs[7] == 0xFFFFFFFF80000001

    def test_amomax_amomin(self):
        s = run_expr("""
            li sp, 0x80100000
            li t0, -5
            sd t0, 0(sp)
            li t1, 3
            amomax.d t2, t1, (sp)
            ld t3, 0(sp)
        """)
        assert s.xregs[28] == 3  # max(-5, 3) signed

    def test_lr_sc_success(self):
        s = run_expr("""
            li sp, 0x80100000
            li t0, 7
            sd t0, 0(sp)
            lr.d t1, (sp)
            addi t1, t1, 1
            sc.d t2, t1, (sp)
            ld t3, 0(sp)
        """)
        assert s.xregs[7] == 0  # success
        assert s.xregs[28] == 8

    def test_sc_without_reservation_fails(self):
        s = run_expr("""
            li sp, 0x80100000
            li t0, 7
            sd t0, 0(sp)
            sc.d t2, t0, (sp)
        """)
        assert s.xregs[7] == 1  # failure

    def test_misaligned_amo_traps(self):
        hart, state = make_hart(
            "li sp, 0x80100001\n li t0, 1\n amoadd.d t1, t0, (sp)")
        result = step_until(hart, lambda r: r.exception is not None or
                            r.name.startswith("amo"))
        assert result.exception is not None


class TestFloat:
    def test_basic_arith(self):
        s = run_expr("""
            li t0, 3
            fcvt.d.l f0, t0
            li t0, 4
            fcvt.d.l f1, t0
            fadd.d f2, f0, f1
            fmul.d f3, f0, f1
            fcvt.l.d t1, f2
            fcvt.l.d t2, f3
        """)
        assert s.xregs[6] == 7
        assert s.xregs[7] == 12

    def test_fmv_roundtrip(self):
        s = run_expr("li t0, 0x4008000000000000\n fmv.d.x f1, t0\n"
                     "fmv.x.d t1, f1")
        assert s.xregs[6] == 0x4008000000000000  # 3.0

    def test_fld_fsd(self):
        s = run_expr("""
            li sp, 0x80100000
            li t0, 0x3FF0000000000000
            sd t0, 0(sp)
            fld f1, 0(sp)
            fsd f1, 8(sp)
            ld t1, 8(sp)
        """)
        assert s.xregs[6] == 0x3FF0000000000000


class TestVector:
    def test_vsetvli_caps_vl(self):
        s = run_expr("li t0, 100\n vsetvli t1, t0, e64")
        assert s.xregs[6] == 4  # VLEN=256 / SEW=64
        assert s.csr.peek(CSR.VL) == 4

    def test_vector_add(self):
        s = run_expr("""
            li sp, 0x80100000
            li t0, 4
            vsetvli t1, t0, e64
            li t2, 1
            sd t2, 0(sp)
            sd t2, 8(sp)
            sd t2, 16(sp)
            sd t2, 24(sp)
            vle64.v v1, (sp)
            vadd.vv v2, v1, v1
            li a1, 0x80100100
            vse64.v v2, (a1)
            ld t3, 0(a1)
            ld t4, 24(a1)
        """)
        assert s.xregs[28] == 2
        assert s.xregs[29] == 2
        assert s.vregs[2] == [2, 2, 2, 2]

    def test_vxor_zeroes(self):
        s = run_expr("""
            li t0, 4
            vsetvli t1, t0, e64
            vxor.vv v3, v1, v1
        """)
        assert s.vregs[3] == [0, 0, 0, 0]


class TestTrapFinish:
    def test_good_trap(self):
        _, result = run("li a0, 0\n ebreak")
        assert result.trap_finish == 0

    def test_bad_trap_code(self):
        _, result = run("li a0, 3\n ebreak")
        assert result.trap_finish == 3


class TestVectorExtended:
    def test_vmv_broadcast(self):
        s = run_expr("""
            li t0, 4
            vsetvli t1, t0, e64
            li t2, 42
            vmv.v.x v1, t2
            vmv.v.v v2, v1
        """)
        assert s.vregs[1] == [42] * 4
        assert s.vregs[2] == [42] * 4

    def test_vmul(self):
        s = run_expr("""
            li t0, 4
            vsetvli t1, t0, e64
            li t2, 7
            vmv.v.x v1, t2
            li t2, 6
            vmv.v.x v2, t2
            vmul.vv v3, v1, v2
        """)
        assert s.vregs[3] == [42] * 4

    def test_vmin_vmax_signed(self):
        s = run_expr("""
            li t0, 4
            vsetvli t1, t0, e64
            li t2, -5
            vmv.v.x v1, t2
            li t2, 3
            vmv.v.x v2, t2
            vmin.vv v3, v1, v2
            vmax.vv v4, v1, v2
            vminu.vv v5, v1, v2
        """)
        assert s.vregs[3] == [(-5) & ((1 << 64) - 1)] * 4
        assert s.vregs[4] == [3] * 4
        assert s.vregs[5] == [3] * 4  # unsigned: -5 is huge

    def test_vector_shifts(self):
        s = run_expr("""
            li t0, 4
            vsetvli t1, t0, e64
            li t2, 1
            vmv.v.x v1, t2
            li t2, 5
            vmv.v.x v2, t2
            vsll.vv v3, v1, v2
            vsrl.vv v4, v3, v2
        """)
        assert s.vregs[3] == [32] * 4
        assert s.vregs[4] == [1] * 4

    def test_partial_vl_tail_undisturbed(self):
        s = run_expr("""
            li t0, 4
            vsetvli t1, t0, e64
            li t2, 9
            vmv.v.x v1, t2
            li t0, 2
            vsetvli t1, t0, e64
            li t2, 1
            vmv.v.x v1, t2
        """)
        assert s.vregs[1] == [1, 1, 9, 9]
