"""Slice-equivalence harness for checkpoint-sliced sharding.

The contract of :func:`repro.parallel.sliced_run` is *byte identity*:
running one workload as N slices on M workers must reproduce, bit for
bit, the serial run of the same workload under the same
``slice_epoch_cycles`` — the same rendered counter report, the same
``RunStats`` counters, the same mismatch cycle, the same merged obs
snapshot.  Worker count may change only the wall clock.

Every test here compares a stitched sliced run against a freshly
executed serial reference (never against golden files), so the suite
also pins the serial epoch-barrier semantics they both share.
"""

import pytest

from repro.core import (
    CONFIG_B,
    CONFIG_BNSD,
    CONFIG_FIXED,
    CONFIG_Z,
    CoSimulation,
    ReliabilityConfig,
)
from repro.dut import NUTSHELL, fault_by_name
from repro.obs import ObsContext
from repro.parallel import (
    SliceExecutionError,
    balanced_cuts,
    epoch_for,
    iter_slice_specs,
    plan_windows,
    sliced_run,
)
from repro.toolkit import render_report
from repro.workloads import build

pytestmark = pytest.mark.slicing

WORKLOAD = build("memory_churn", array_kb=8, passes=1)
MAX = 4500  # the workload hits its good trap at exactly this cycle
RELIABLE_BNSD = CONFIG_BNSD.with_(
    reliability=ReliabilityConfig(reliable=True))


def serial_run(config, *, max_cycles=MAX, epoch=None, fault="", trigger=0,
               obs=None):
    """The serial reference: one co-simulation under the sliced epoch."""
    if epoch is not None:
        config = config.with_(slice_epoch_cycles=epoch)
    cosim = CoSimulation(NUTSHELL, config, WORKLOAD.image, seed=2025,
                         uart_input=WORKLOAD.uart_input, obs=obs)
    if fault:
        fault_by_name(fault).install(cosim.dut.cores[0], trigger)
    result = cosim.run(max_cycles=max_cycles)
    return result, cosim


def sliced(config, *, slices, max_cycles=MAX, **kwargs):
    return sliced_run(NUTSHELL, config, WORKLOAD.image,
                      max_cycles=max_cycles, slices=slices, seed=2025,
                      uart_input=WORKLOAD.uart_input, **kwargs)


def assert_identical(result, sr):
    """The byte-identity contract between a serial RunResult and a
    SlicedRunResult."""
    serial = result.summarize()
    assert render_report(result.stats) == render_report(sr.stats)
    assert serial.counters == sr.summary.counters
    assert serial == sr.summary
    assert result.stats.checkpoints == sr.stats.checkpoints


class TestEpochFor:
    def test_even_split(self):
        assert epoch_for(4500, 4) == 1125
        assert epoch_for(4500, 1) == 4500

    def test_ceiling_division(self):
        # The last window is the short one: 4 + 4 + 2.
        assert epoch_for(10, 3) == 4

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            epoch_for(4500, 0)
        with pytest.raises(ValueError):
            epoch_for(0, 4)


class TestBalancedPlan:
    """Critical-path-balanced windows: geometric shrink, same identity."""

    def test_cuts_cover_run_and_shrink(self):
        epoch, cuts = balanced_cuts(MAX, 4)
        assert cuts[-1] == MAX
        assert len(cuts) == 4
        assert cuts == sorted(set(cuts))
        # Every cut snaps to the fine barrier grid.
        assert all(cut % epoch == 0 or cut == MAX for cut in cuts)
        # Windows shrink (modulo grid snapping): later slices wait
        # longer for their boundary seed, so they get less work.
        windows = [b - a for a, b in zip([0] + cuts, cuts)]
        assert all(later <= earlier + epoch
                   for earlier, later in zip(windows, windows[1:]))
        assert windows[-1] < windows[0]

    def test_single_slice_degenerates(self):
        assert balanced_cuts(MAX, 1) == (MAX, [MAX])

    def test_plan_windows_dispatch(self):
        assert plan_windows(MAX, 4, "uniform") == \
            (epoch_for(MAX, 4), [1125, 2250, 3375, 4500])
        assert plan_windows(MAX, 4, "balanced") == balanced_cuts(MAX, 4)
        with pytest.raises(ValueError, match="plan"):
            plan_windows(MAX, 4, "greedy")

    def test_balanced_identity(self):
        sr = sliced(CONFIG_BNSD, slices=4, workers=1, plan="balanced")
        result, cosim = serial_run(CONFIG_BNSD, epoch=sr.epoch_cycles)
        # The fine grid must still hit quiescent boundaries only.
        assert cosim._skipped_barriers == 0
        assert len(sr.slices) == 4
        _, cuts = balanced_cuts(MAX, 4)
        assert [piece.end_cycle for piece in sr.slices] == cuts
        assert_identical(result, sr)

    def test_balanced_matches_uniform_outcome(self):
        # Different plans change the barrier cadence (and hence the comm
        # counters), but never the run outcome: same cycles, same work,
        # same verdict.
        uniform = sliced(CONFIG_BNSD, slices=4, workers=1)
        balanced = sliced(CONFIG_BNSD, slices=4, workers=1,
                          plan="balanced")
        assert uniform.passed and balanced.passed
        assert uniform.summary.mismatch == balanced.summary.mismatch
        assert uniform.summary.counters.cycles == \
            balanced.summary.counters.cycles
        assert uniform.summary.counters.instructions == \
            balanced.summary.counters.instructions
        assert uniform.summary.counters.sw_ref_steps == \
            balanced.summary.counters.sw_ref_steps


class TestSerialIdentity:
    """Sliced(N) == serial under the same slice_epoch_cycles."""

    @pytest.mark.parametrize("slices", [1, 2, 4, 7])
    def test_slice_counts(self, slices):
        result, cosim = serial_run(CONFIG_BNSD,
                                   epoch=epoch_for(MAX, slices))
        # This workload is quiescent at every epoch boundary — the
        # precondition for reconstruct-mode slicing.
        assert cosim._skipped_barriers == 0
        sr = sliced(CONFIG_BNSD, slices=slices)
        assert sr.passed and result.passed
        assert len(sr.slices) == slices
        assert_identical(result, sr)

    @pytest.mark.parametrize("config",
                             [CONFIG_Z, CONFIG_FIXED, CONFIG_B],
                             ids=lambda c: c.name)
    def test_packer_schemes(self, config):
        result, _ = serial_run(config, epoch=epoch_for(MAX, 4))
        sr = sliced(config, slices=4)
        assert_identical(result, sr)

    @pytest.mark.parametrize("max_cycles", [4499, 3000])
    def test_budget_not_multiple_of_epoch(self, max_cycles):
        """Uneven windows (ceiling epoch) and mid-run budgets stitch
        identically too — exit code and all."""
        result, _ = serial_run(CONFIG_BNSD, max_cycles=max_cycles,
                               epoch=epoch_for(max_cycles, 4))
        sr = sliced(CONFIG_BNSD, slices=4, max_cycles=max_cycles)
        assert_identical(result, sr)

    def test_workload_finishing_before_first_boundary(self):
        """A huge budget yields one slice; identity still holds."""
        result, _ = serial_run(CONFIG_BNSD, max_cycles=1_000_000,
                               epoch=epoch_for(1_000_000, 4))
        sr = sliced(CONFIG_BNSD, slices=4, max_cycles=1_000_000)
        assert len(sr.slices) == 1
        assert_identical(result, sr)

    def test_forward_mode_matches_reconstruct_on_clean_run(self):
        fast = sliced(CONFIG_BNSD, slices=4)
        faithful = sliced(CONFIG_BNSD, slices=4, mode="forward")
        assert fast.summary == faithful.summary
        assert render_report(fast.stats) == render_report(faithful.stats)


class TestWorkerInvariance:
    """Worker count changes the wall clock, never the result."""

    def test_pool_matches_serial_executor(self):
        solo = sliced(CONFIG_BNSD, slices=4, workers=1)
        pooled = sliced(CONFIG_BNSD, slices=4, workers=4)
        assert solo.summary == pooled.summary
        assert render_report(solo.stats) == render_report(pooled.stats)
        assert [s.counters for s in solo.slices] == \
            [s.counters for s in pooled.slices]


class TestObsEquivalence:
    """Merged per-slice metric snapshots == the serial observed run's."""

    def test_merged_snapshot_matches_serial(self):
        obs = ObsContext()
        result, _ = serial_run(CONFIG_BNSD, epoch=epoch_for(MAX, 4),
                               obs=obs)
        sr = sliced(CONFIG_BNSD, slices=4, collect_metrics=True)
        assert sr.summary.metrics is not None
        assert sr.summary.metrics.records() == result.metrics.records()
        assert render_report(result.stats, snapshot=result.metrics) == \
            render_report(sr.stats, snapshot=sr.summary.metrics)

    def test_parent_registry_accounts_slices(self):
        """slicing.* counters land on the orchestrating registry only —
        never inside the stitched (serial-identical) snapshot."""
        obs = ObsContext()
        sr = sliced(CONFIG_BNSD, slices=4, obs=obs, collect_metrics=True)
        parent = obs.registry.snapshot()
        assert parent.value("slicing.slices") == 4
        assert parent.value("slicing.slice_cycles") == \
            sr.stats.counters.cycles
        assert "slicing.slices" not in sr.summary.metrics.metrics


class TestFaultAttribution:
    """An injected DUT bug must surface in the sliced run exactly as in
    the serial run: same mismatch cycle, same debug report, attributed
    to the slice whose window contains it."""

    CASES = [
        ("control_flow_wdata", 500),
        ("store_queue_mismatch", 300),
        ("misaligned_wakeup", 800),
    ]

    @pytest.mark.parametrize("fault,trigger", CASES,
                             ids=[name for name, _ in CASES])
    def test_forward_mode_reproduces_serial_mismatch(self, fault, trigger):
        result, _ = serial_run(CONFIG_BNSD, epoch=epoch_for(MAX, 4),
                               fault=fault, trigger=trigger)
        serial = result.summarize()
        assert serial.mismatch is not None
        sr = sliced(CONFIG_BNSD, slices=4, mode="forward",
                    fault=fault, trigger=trigger)
        assert not sr.passed
        assert sr.summary.mismatch == serial.mismatch
        assert sr.summary.debug_report_text == serial.debug_report_text
        assert render_report(result.stats) == render_report(sr.stats)
        # Attribution: the failing slice's window contains the mismatch
        # cycle, and no slice past the failure was ever produced.
        failing = sr.slices[-1]
        assert failing.mismatch == serial.mismatch
        assert failing.start_cycle < serial.mismatch.cycle \
            <= failing.end_cycle
        assert all(s.mismatch is None for s in sr.slices[:-1])

    def test_reconstruct_mode_rejects_faults(self):
        """Reconstruct seeding would absorb boundary-crossing corruption
        into the rebuilt REF (a silent false pass) — refused up front."""
        with pytest.raises(ValueError, match="forward"):
            next(iter_slice_specs(
                NUTSHELL, CONFIG_BNSD, WORKLOAD.image, max_cycles=MAX,
                slices=4, fault="control_flow_wdata", trigger=500))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="slice mode"):
            next(iter_slice_specs(
                NUTSHELL, CONFIG_BNSD, WORKLOAD.image, max_cycles=MAX,
                slices=4, mode="telepathy"))


class TestLinkFaultAttribution:
    """Transport faults are slice-local: the retransmission shows up in
    exactly the targeted slice, and the stitched run still passes."""

    @pytest.mark.parametrize("target", [0, 2])
    def test_drop_recovered_in_targeted_slice(self, target):
        sr = sliced(RELIABLE_BNSD, slices=4, link_fault="link_drop",
                    link_trigger=0, link_slice=target)
        assert sr.passed
        retransmits = [s.counters.link_retransmits for s in sr.slices]
        expected = [0, 0, 0, 0]
        expected[target] = 1
        assert retransmits == expected
        assert sr.summary.counters.link_retransmits == 1

    def test_attribution_is_worker_invariant(self):
        solo = sliced(RELIABLE_BNSD, slices=4, link_fault="link_drop",
                      link_trigger=0, link_slice=2, workers=1)
        pooled = sliced(RELIABLE_BNSD, slices=4, link_fault="link_drop",
                        link_trigger=0, link_slice=2, workers=4)
        assert solo.summary == pooled.summary
        assert [s.counters for s in solo.slices] == \
            [s.counters for s in pooled.slices]

    def test_unreliable_transport_fails_loudly(self):
        """Without retransmission a dropped frame leaves the slice
        non-quiescent; the harness must refuse to stitch a silently
        different report."""
        with pytest.raises(SliceExecutionError):
            sliced(CONFIG_BNSD, slices=4, link_fault="link_drop",
                   link_trigger=0, link_slice=0)
