"""Tests for the DUT simulator: event generation, caches, TLBs, faults."""


import repro.events as EV
from repro.dut import (
    FAULT_CATALOGUE,
    NUTSHELL,
    XIANGSHAN_DEFAULT,
    XIANGSHAN_DUAL,
    DutSystem,
    SetAssocCache,
    StoreBuffer,
    faults_by_category,
)
from repro.dut.tlb import TlbHierarchy, TlbModel
from repro.isa import assemble
from repro.isa.mmu import Translation


def run_dut(image: bytes, config=XIANGSHAN_DEFAULT, max_cycles=40_000,
            seed=2025):
    system = DutSystem(config, seed=seed)
    system.load_image(image)
    events = []
    cycles = 0
    while not system.finished() and cycles < max_cycles:
        for bundle in system.cycle():
            events.extend(bundle.events)
        cycles += 1
    return system, events


class TestEventGeneration:
    def test_commits_have_monotonic_tags(self, small_image):
        _, events = run_dut(small_image)
        tags = [e.order_tag for e in events if isinstance(e, EV.InstrCommit)]
        assert tags == sorted(tags)
        assert len(tags) == len(set(tags))

    def test_every_retired_instruction_commits(self, small_image):
        system, events = run_dut(small_image)
        commits = [e for e in events if isinstance(e, EV.InstrCommit)]
        assert len(commits) == system.cores[0].retired

    def test_state_snapshots_on_commit_cycles(self, small_image):
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(small_image)
        for _ in range(2000):
            (bundle,) = system.cycle()
            if bundle.committed:
                kinds = {type(e) for e in bundle.events}
                assert EV.IntRegState in kinds
                assert EV.CsrState in kinds
            if bundle.trap_finish is not None:
                break

    def test_trap_finish_event_emitted(self, small_image):
        _, events = run_dut(small_image)
        traps = [e for e in events if isinstance(e, EV.TrapFinish)]
        assert len(traps) == 1
        assert traps[0].code == 0

    def test_loads_and_stores_emitted(self, small_image):
        _, events = run_dut(small_image)
        assert any(isinstance(e, EV.LoadEvent) for e in events)
        assert any(isinstance(e, EV.StoreEvent) for e in events)

    def test_division_reports_delayed_writeback(self):
        image = assemble("li t0, 100\n li t1, 7\n div t2, t0, t1\n"
                         "li a0, 0\n ebreak")
        _, events = run_dut(image)
        assert any(isinstance(e, EV.DelayedIntUpdate) for e in events)

    def test_event_set_filtering(self, small_image):
        _, events = run_dut(small_image, config=NUTSHELL)
        names = {type(e).__name__ for e in events}
        allowed = set(NUTSHELL.event_set)
        assert names <= allowed

    def test_seed_determinism(self, small_image):
        _, events_a = run_dut(small_image, seed=7)
        _, events_b = run_dut(small_image, seed=7)
        assert events_a == events_b

    def test_different_seeds_change_timing_not_architecture(self, small_image):
        sys_a, _ = run_dut(small_image, seed=1)
        sys_b, _ = run_dut(small_image, seed=2)
        assert sys_a.cores[0].retired == sys_b.cores[0].retired
        assert sys_a.cores[0].state.xregs == sys_b.cores[0].state.xregs

    def test_commit_width_respected(self, microbench_image):
        system = DutSystem(XIANGSHAN_DEFAULT)
        system.load_image(microbench_image)
        for _ in range(3000):
            (bundle,) = system.cycle()
            assert bundle.committed <= XIANGSHAN_DEFAULT.commit_width
            if bundle.trap_finish is not None:
                break


class TestHierarchyEvents:
    def test_cache_refills_on_large_footprint(self):
        source = """
            li s0, 0x80200000
            li t0, 0
        loop:
            add t1, s0, t0
            sd t0, 0(t1)
            addi t0, t0, 64
            li t2, 32768
            blt t0, t2, loop
            li a0, 0
            ebreak
        """
        _, events = run_dut(assemble(source), max_cycles=200_000)
        assert any(isinstance(e, EV.DCacheRefill) for e in events)
        assert any(isinstance(e, EV.L2Refill) for e in events)
        assert any(isinstance(e, EV.SbufferFlush) for e in events)

    def test_refill_data_matches_memory(self, small_image):
        system, events = run_dut(small_image)
        for event in events:
            if isinstance(event, EV.DCacheRefill):
                line = system.memory.load_words(event.addr, 8)
                # The line may have been rewritten later; at minimum the
                # refill address is line-aligned and data has 8 words.
                assert event.addr % 64 == 0
                assert len(event.data) == 8
                del line

    def test_icache_refills(self, small_image):
        _, events = run_dut(small_image)
        assert any(isinstance(e, EV.ICacheRefill) for e in events)


class TestCacheModel:
    def test_hit_after_miss(self):
        cache = SetAssocCache(sets=4, ways=2)
        hit, line = cache.access(0x1000)
        assert not hit and line == 0x1000
        hit, _ = cache.access(0x1008)  # same line
        assert hit

    def test_lru_eviction(self):
        cache = SetAssocCache(sets=1, ways=2)
        cache.access(0x000)
        cache.access(0x040)
        cache.access(0x000)  # touch to make 0x040 LRU
        cache.access(0x080)  # evicts 0x040
        hit, _ = cache.access(0x000)
        assert hit
        hit, _ = cache.access(0x040)
        assert not hit

    def test_invalidate(self):
        cache = SetAssocCache(sets=4, ways=2)
        cache.access(0x1000)
        cache.invalidate()
        hit, _ = cache.access(0x1000)
        assert not hit

    def test_stats(self):
        cache = SetAssocCache(sets=4, ways=2)
        cache.access(0)
        cache.access(0)
        assert cache.misses == 1 and cache.hits == 1


class TestStoreBuffer:
    def test_coalesces_same_line(self):
        buffer = StoreBuffer(entries=4)
        assert buffer.store(0x100, 8) == []
        assert buffer.store(0x108, 8) == []
        assert len(buffer._lines) == 1

    def test_flush_on_capacity(self):
        buffer = StoreBuffer(entries=2)
        buffer.store(0x000, 8)
        buffer.store(0x040, 8)
        flushed = buffer.store(0x080, 8)
        assert len(flushed) == 1
        assert flushed[0][0] == 0x000  # oldest line

    def test_drain_flushes_all(self):
        buffer = StoreBuffer(entries=8)
        buffer.store(0x000, 8)
        buffer.store(0x040, 8)
        assert len(buffer.drain()) == 2
        assert buffer.drain() == []


class TestTlbModel:
    def _translation(self, vpn: int) -> Translation:
        return Translation(paddr=vpn << 12, vpn=vpn, ppn=vpn + 100, level=0,
                           perm=0xCF, pte_addr=0)

    def test_miss_then_hit(self):
        tlb = TlbModel(entries=4)
        assert tlb.lookup(5) is None
        tlb.fill(self._translation(5))
        assert tlb.lookup(5) is not None

    def test_lru_capacity(self):
        tlb = TlbModel(entries=2)
        for vpn in (1, 2, 3):
            tlb.fill(self._translation(vpn))
        assert tlb.lookup(1) is None
        assert tlb.lookup(3) is not None

    def test_hierarchy_l1_and_l2_fills(self):
        tlbs = TlbHierarchy(2, 2, 8)
        l1, l2 = tlbs.access(self._translation(7), is_fetch=False)
        assert l1 is not None and l2 is not None
        l1, l2 = tlbs.access(self._translation(7), is_fetch=False)
        assert l1 is None and l2 is None

    def test_l2_shared_between_l1s(self):
        tlbs = TlbHierarchy(2, 2, 8)
        tlbs.access(self._translation(7), is_fetch=False)
        l1, l2 = tlbs.access(self._translation(7), is_fetch=True)
        assert l1 is not None  # itlb missed
        assert l2 is None  # but the shared L2 hit

    def test_flush(self):
        tlbs = TlbHierarchy(2, 2, 8)
        tlbs.access(self._translation(7), is_fetch=False)
        tlbs.flush()
        l1, l2 = tlbs.access(self._translation(7), is_fetch=False)
        assert l1 is not None and l2 is not None


class TestDualCore:
    def test_both_cores_emit_with_core_ids(self, microbench_image):
        system, events = run_dut(microbench_image, config=XIANGSHAN_DUAL,
                                 max_cycles=60_000)
        assert {e.core_id for e in events} == {0, 1}
        assert system.exit_code() == 0

    def test_cores_share_memory(self, microbench_image):
        system = DutSystem(XIANGSHAN_DUAL)
        system.load_image(microbench_image)
        assert system.cores[0].bus.memory is system.cores[1].bus.memory


class TestFaultCatalogue:
    def test_nineteen_faults_in_three_categories(self):
        assert len(FAULT_CATALOGUE) == 19
        grouped = faults_by_category()
        assert len(grouped) == 3
        assert sorted(len(v) for v in grouped.values()) == [6, 6, 7]

    def test_pull_requests_unique(self):
        prs = [f.pull_request for f in FAULT_CATALOGUE]
        assert len(set(prs)) == 19

    def test_fault_corrupts_state_and_events_consistently(self, small_image):
        from repro.dut import fault_by_name

        def commit_stream(install_fault: bool):
            system = DutSystem(XIANGSHAN_DEFAULT)
            system.load_image(small_image)
            if install_fault:
                fault_by_name("control_flow_wdata").install(
                    system.cores[0], trigger=50)
            wdata = []
            for _ in range(40_000):
                (bundle,) = system.cycle()
                wdata.extend(e.wdata for e in bundle.events
                             if isinstance(e, EV.InstrCommit))
                if system.finished():
                    break
            return wdata, system

        clean_wdata, _clean = commit_stream(False)
        faulty_wdata, faulty = commit_stream(True)
        assert clean_wdata != faulty_wdata
        # Consistency: the event carried exactly what the DUT regfile held.
        first_diff = next(i for i, (a, b) in
                          enumerate(zip(clean_wdata, faulty_wdata)) if a != b)
        assert faulty_wdata[first_diff] == clean_wdata[first_diff] ^ 0x4
