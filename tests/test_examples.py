"""Smoke tests: every shipped example runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

EXPECT = {
    "quickstart.py": ["co-simulation PASSED", "modeled co-simulation speed"],
    "bug_hunt.py": ["detected at cycle", "debug report",
                    "available fault catalogue"],
    "optimization_sweep.py": ["Baseline (Z)", "+Squash (EBINSD)",
                              "paper reference"],
    "parallel_fuzz.py": ["deterministic campaign report",
                         "reports identical: True", "throughput rollup"],
    "trace_workflow.py": ["top event types", "what-if fusion",
                          "trace-driven checking: PASSED"],
    "mini_os_boot.py": ["clean shutdown", "optimisation ladder"],
    "fast_capture.py": ["straight-to-wire capture", "tier engaged",
                        "capture.fallback.obs",
                        "byte-identical with the tier on and off"],
    "profile_run.py": ["instrumented run", "slowest stage:",
                       "Chrome trace", "metrics JSONL"],
    "sliced_run.py": ["per-slice windows", "stitched counters",
                      "byte-identical to serial: True"],
    "service_demo.py": ["cache hit: True", "re-queued orphans",
                        "re-run report identical to original: True"],
    "chaos_campaign.py": ["report identical to reference: True",
                          "quarantined",
                          "surviving seeds identical to reference: True"],
}


def test_every_example_has_expectations():
    assert {path.name for path in EXAMPLES} == set(EXPECT)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    proc = subprocess.run([sys.executable, str(path)], capture_output=True,
                          text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    for needle in EXPECT[path.name]:
        assert needle in proc.stdout, (path.name, needle)
