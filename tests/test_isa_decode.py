"""Decoder coverage: every implemented encoding decodes to the right
operation, and malformed encodings raise.

Uses the assembler as the encoding oracle and checks decoder output
fields; a round-trip property then asserts assemble->decode is lossless
for every register-register operation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble, decode
from repro.isa.decode import IllegalInstruction


def decode_one(source: str):
    image = assemble(source)
    return decode(int.from_bytes(image[:4], "little"))


ALU_RR = ["add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or",
          "and", "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem",
          "remu"]
ALU_RR_W = ["addw", "subw", "sllw", "srlw", "sraw", "mulw", "divw", "divuw",
            "remw", "remuw"]
ALU_RI = ["addi", "slti", "sltiu", "xori", "ori", "andi"]
LOADS = ["lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"]
STORES = ["sb", "sh", "sw", "sd"]
BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]
AMOS = ["amoswap", "amoadd", "amoxor", "amoand", "amoor", "amomin",
        "amomax", "amominu", "amomaxu"]


@pytest.mark.parametrize("op", ALU_RR + ALU_RR_W)
def test_alu_rr(op):
    d = decode_one(f"{op} t0, t1, t2")
    assert (d.name, d.rd, d.rs1, d.rs2) == (op, 5, 6, 7)


@pytest.mark.parametrize("op", ALU_RI)
def test_alu_ri(op):
    d = decode_one(f"{op} a0, a1, 100")
    assert (d.name, d.rd, d.rs1, d.imm) == (op, 10, 11, 100)


@pytest.mark.parametrize("op", LOADS)
def test_loads(op):
    d = decode_one(f"{op} t0, -4(a0)")
    assert (d.name, d.rd, d.rs1, d.imm) == (op, 5, 10, -4)


@pytest.mark.parametrize("op", STORES)
def test_stores(op):
    d = decode_one(f"{op} t0, 8(a0)")
    assert (d.name, d.rs2, d.rs1, d.imm) == (op, 5, 10, 8)


@pytest.mark.parametrize("op", BRANCHES)
def test_branches(op):
    d = decode_one(f"{op} t0, t1, 16")
    assert (d.name, d.rs1, d.rs2, d.imm) == (op, 5, 6, 16)


@pytest.mark.parametrize("op", AMOS)
@pytest.mark.parametrize("width", ["w", "d"])
def test_amos(op, width):
    d = decode_one(f"{op}.{width} t0, t1, (t2)")
    assert d.name == f"{op}.{width}"
    assert (d.rd, d.rs2, d.rs1) == (5, 6, 7)


@pytest.mark.parametrize("op,f3", [("csrrw", 1), ("csrrs", 2), ("csrrc", 3)])
def test_csr_ops(op, f3):
    d = decode_one(f"{op} t0, mstatus, t1")
    assert (d.name, d.rd, d.rs1, d.csr) == (op, 5, 6, 0x300)


def test_csr_immediates_carry_uimm_in_rs1():
    d = decode_one("csrrwi t0, mscratch, 21")
    assert d.name == "csrrwi" and d.rs1 == 21


def test_jal_j_imm_bits():
    # Exercise all JAL immediate bit groups with a large offset.
    image = assemble("jal ra, target\n.zero 2048\ntarget: nop")
    d = decode(int.from_bytes(image[:4], "little"))
    assert d.name == "jal" and d.imm == 2052


def test_branch_imm_sign():
    image = assemble("top:\n nop\n nop\n beq x0, x0, top")
    d = decode(int.from_bytes(image[8:12], "little"))
    assert d.imm == -8


class TestIllegal:
    @pytest.mark.parametrize("word", [
        0xFFFFFFFF,           # all ones
        0x0000007F,           # unused opcode space
        0x00002063,           # branch funct3=2 (reserved)
        0x0000F003,           # load funct3=7 (reserved)
        0x00004023,           # store funct3=4 (reserved)
        0x02007033,           # OP with M funct7 but funct3 of a non-M slot? (mul funct3=0 ok) -> use funct7=0x40
        0x7FF00073,           # SYSTEM funct3=0, unknown funct12
        0x00005073 & ~0x7000 | 0x4000,  # SYSTEM funct3=4 (reserved)
    ])
    def test_undefined_encodings(self, word):
        if word == 0x02007033:
            word = (0x40 << 25) | 0x33  # OP funct7=0x40 funct3=0 (reserved)
        with pytest.raises(IllegalInstruction):
            decode(word)

    def test_reserved_shift_raises(self):
        with pytest.raises(IllegalInstruction):
            decode(0x4000_1013 | (1 << 26))  # slli with bad top bits


@given(st.sampled_from(ALU_RR + ALU_RR_W), st.integers(0, 31),
       st.integers(0, 31), st.integers(0, 31))
@settings(max_examples=150, deadline=None)
def test_rr_roundtrip_property(op, rd, rs1, rs2):
    d = decode_one(f"{op} x{rd}, x{rs1}, x{rs2}")
    assert (d.name, d.rd, d.rs1, d.rs2) == (op, rd, rs1, rs2)


@given(st.sampled_from(LOADS + STORES), st.integers(1, 31),
       st.integers(1, 31), st.integers(-2048, 2047))
@settings(max_examples=150, deadline=None)
def test_mem_roundtrip_property(op, reg, base, imm):
    d = decode_one(f"{op} x{reg}, {imm}(x{base})")
    assert d.imm == imm
    assert d.rs1 == base
