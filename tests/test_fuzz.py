"""Differential fuzzing: random programs through the full stack.

Every generated program must co-simulate cleanly under every
configuration — any mismatch indicates a bug in the communication or
checking machinery (DUT and REF share the executor, so architectural
divergence is impossible without fault injection).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CONFIG_BNSD, CONFIG_COUPLED, CONFIG_FIXED, CONFIG_Z, \
    run_cosim
from repro.dut import NUTSHELL, XIANGSHAN_DEFAULT
from repro.workloads import FuzzProfile, ProgramGenerator, fuzz_workload


class TestGenerator:
    def test_deterministic(self):
        a = ProgramGenerator(7, length=50).generate()
        b = ProgramGenerator(7, length=50).generate()
        assert a.source == b.source
        assert a.image == b.image

    def test_seeds_differ(self):
        a = ProgramGenerator(1, length=50).generate()
        b = ProgramGenerator(2, length=50).generate()
        assert a.image != b.image

    def test_length_scales_program(self):
        short = ProgramGenerator(3, length=20).generate()
        long = ProgramGenerator(3, length=200).generate()
        assert len(long.image) > len(short.image)

    def test_source_is_reassemblable(self):
        from repro.isa import assemble

        program = ProgramGenerator(11, length=80).generate()
        assert assemble(program.source) == program.image

    def test_profile_controls_mix(self):
        no_fp = ProgramGenerator(
            5, length=100, profile=FuzzProfile(fp=0.0)).generate()
        assert "fadd.d" not in no_fp.source
        heavy_fp = ProgramGenerator(
            5, length=100, profile=FuzzProfile(fp=50.0)).generate()
        assert "f" in heavy_fp.source


class TestDifferentialFuzzing:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs_pass_full_stack(self, seed):
        workload = fuzz_workload(seed, length=90)
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed, (seed, result.mismatch, result.exit_code)

    @pytest.mark.parametrize("config", (CONFIG_Z, CONFIG_FIXED,
                                        CONFIG_COUPLED),
                             ids=lambda c: c.name)
    def test_one_seed_across_configs(self, config):
        workload = fuzz_workload(42, length=120)
        result = run_cosim(XIANGSHAN_DEFAULT, config, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed, result.mismatch

    def test_vector_profile(self):
        workload = fuzz_workload(3, length=60,
                                 profile=FuzzProfile(vector=3.0))
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed, result.mismatch

    def test_trap_heavy_profile(self):
        workload = fuzz_workload(4, length=80,
                                 profile=FuzzProfile(ecall=8.0))
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed, result.mismatch

    def test_nutshell_runs_fuzz(self):
        workload = fuzz_workload(6, length=60)
        result = run_cosim(NUTSHELL, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles * 3)
        assert result.passed, result.mismatch

    @given(seed=st.integers(min_value=0, max_value=10_000),
           length=st.integers(min_value=10, max_value=150))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_any_seed_passes(self, seed, length):
        workload = fuzz_workload(seed, length=length)
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed, (seed, length, result.mismatch)
