"""Integration tests for the CoSimulation framework."""

import pytest

from repro.core import (
    CONFIG_B,
    CONFIG_BN,
    CONFIG_BNSD,
    CONFIG_COUPLED,
    CONFIG_FIXED,
    CONFIG_Z,
    run_cosim,
)
from repro.comm import FPGA_VU19P, PALLADIUM
from repro.dut import (
    NUTSHELL,
    XIANGSHAN_DEFAULT,
    XIANGSHAN_DUAL,
    XIANGSHAN_MINIMAL,
)

ALL_CONFIGS = (CONFIG_Z, CONFIG_FIXED, CONFIG_B, CONFIG_BN, CONFIG_BNSD,
               CONFIG_COUPLED)


class TestConfigurationLadder:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_all_configs_pass_clean_workload(self, small_image, config):
        result = run_cosim(XIANGSHAN_DEFAULT, config, small_image,
                           max_cycles=60_000)
        assert result.passed, result.mismatch
        assert result.exit_code == 0

    @pytest.mark.parametrize("dut", (NUTSHELL, XIANGSHAN_MINIMAL,
                                     XIANGSHAN_DEFAULT),
                             ids=lambda d: d.name)
    def test_all_duts_pass(self, small_image, dut):
        result = run_cosim(dut, CONFIG_BNSD, small_image, max_cycles=80_000)
        assert result.passed

    def test_dual_core(self, microbench_image):
        result = run_cosim(XIANGSHAN_DUAL, CONFIG_BNSD, microbench_image,
                           max_cycles=120_000)
        assert result.passed
        assert result.instructions > 0

    def test_same_instruction_count_across_configs(self, small_image):
        counts = {
            config.name: run_cosim(XIANGSHAN_DEFAULT, config, small_image,
                                   max_cycles=60_000).instructions
            for config in (CONFIG_Z, CONFIG_BNSD)
        }
        assert len(set(counts.values())) == 1


class TestOptimizationEffects:
    @pytest.fixture(scope="class")
    def results(self, small_image):
        return {
            config.name: run_cosim(XIANGSHAN_DEFAULT, config, small_image,
                                   max_cycles=60_000)
            for config in ALL_CONFIGS
        }

    def test_batch_reduces_invokes(self, results):
        assert results["B"].stats.counters.invokes < \
            results["Z"].stats.counters.invokes / 5

    def test_fixed_has_bubbles_batch_does_not(self, results):
        assert results["FIXED"].stats.bubble_bytes > 0
        assert results["B"].stats.bubble_bytes == 0
        assert results["FIXED"].stats.packet_utilization < 0.5
        assert results["B"].stats.packet_utilization == 1.0

    def test_fixed_inflates_bytes(self, results):
        assert results["FIXED"].stats.counters.bytes_sent > \
            1.5 * results["Z"].stats.counters.bytes_sent

    def test_squash_reduces_bytes(self, results):
        assert results["EBINSD"].stats.counters.bytes_sent < \
            results["BIN"].stats.counters.bytes_sent / 5

    def test_squash_fusion_ratio_above_coupled(self, results):
        assert results["EBINSD"].stats.fusion_ratio >= \
            results["COUPLED"].stats.fusion_ratio

    def test_modeled_speed_ladder_monotone(self, results):
        speeds = [
            results[name].breakdown(
                PALLADIUM, XIANGSHAN_DEFAULT.gates_millions,
                nonblocking=(name in ("BIN", "EBINSD"))).speed_khz
            for name in ("Z", "B", "BIN", "EBINSD")
        ]
        assert speeds == sorted(speeds)
        assert speeds[-1] > 10 * speeds[0]

    def test_software_work_reduced_by_squash(self, results):
        assert results["EBINSD"].stats.counters.sw_bytes_checked < \
            results["BIN"].stats.counters.sw_bytes_checked / 3

    def test_checkpoints_taken(self, results):
        assert results["EBINSD"].stats.checkpoints > 0


class TestRunResult:
    def test_uart_output_captured(self, mmio_workload):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                           mmio_workload.image,
                           max_cycles=mmio_workload.max_cycles)
        assert result.passed
        assert "hello difftest-h" in result.uart_output

    def test_breakdown_per_platform(self, small_image):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                           max_cycles=60_000)
        pldm = result.breakdown(PALLADIUM, 57.6, True)
        fpga = result.breakdown(FPGA_VU19P, 57.6, True)
        assert fpga.speed_khz > pldm.speed_khz

    def test_stats_summary_renders(self, small_image):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                           max_cycles=60_000)
        assert "cycles=" in result.stats.summary()

    def test_max_cycles_budget_respected(self, small_image):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                           max_cycles=10)
        assert result.cycles == 10
        assert result.exit_code is None


class TestNdeWorkloads:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_interrupts_under_all_configs(self, timer_workload, config):
        result = run_cosim(XIANGSHAN_DEFAULT, config, timer_workload.image,
                           max_cycles=timer_workload.max_cycles)
        assert result.passed, result.mismatch

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_mmio_under_all_configs(self, mmio_workload, config):
        result = run_cosim(XIANGSHAN_DEFAULT, config, mmio_workload.image,
                           max_cycles=mmio_workload.max_cycles)
        assert result.passed, result.mismatch

    def test_squash_sends_ndes_ahead(self, timer_workload):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD,
                           timer_workload.image,
                           max_cycles=timer_workload.max_cycles)
        assert result.stats.nde_sent_ahead > 0
        assert result.stats.fusion_breaks == 0

    def test_coupled_breaks_on_ndes(self, timer_workload):
        result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_COUPLED,
                           timer_workload.image,
                           max_cycles=timer_workload.max_cycles)
        assert result.stats.fusion_breaks > 0


class TestSeedStability:
    def test_different_seeds_still_pass(self, small_image):
        for seed in (1, 7, 99):
            result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                               max_cycles=60_000, seed=seed)
            assert result.passed

    def test_same_seed_same_stats(self, small_image):
        a = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                      max_cycles=60_000, seed=5)
        b = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, small_image,
                      max_cycles=60_000, seed=5)
        assert a.stats.counters.bytes_sent == b.stats.counters.bytes_sent
        assert a.cycles == b.cycles
