"""Shared fixtures: prebuilt workload images and co-simulation helpers."""

from __future__ import annotations

import pytest

from repro.core import CONFIG_BNSD, run_cosim
from repro.dut import XIANGSHAN_DEFAULT
from repro.isa import assemble
from repro.workloads import build

#: A small, fast, deterministic mixed kernel used across many tests.
SMALL_PROGRAM = """
_start:
    li sp, 0x80100000
    li t0, 60
    li t1, 0
    li t2, 7
loop:
    mul t3, t1, t2
    add t1, t1, t0
    sd t1, -8(sp)
    ld t4, -8(sp)
    xor t5, t4, t3
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""


@pytest.fixture(scope="session")
def small_image() -> bytes:
    return assemble(SMALL_PROGRAM)


@pytest.fixture(scope="session")
def microbench_image() -> bytes:
    return build("microbench", iterations=80).image


@pytest.fixture(scope="session")
def timer_workload():
    return build("timer_interrupt", interrupts=4)


@pytest.fixture(scope="session")
def mmio_workload():
    return build("mmio_echo", repeats=4)


def quick_cosim(image: bytes, diff_config=CONFIG_BNSD,
                dut_config=XIANGSHAN_DEFAULT, max_cycles: int = 60_000,
                seed: int = 2025):
    """Run a small co-simulation and return the RunResult."""
    return run_cosim(dut_config, diff_config, image, max_cycles=max_cycles,
                     seed=seed)
