#!/usr/bin/env python3
"""Tuning-toolkit workflow: trace dump, SQL analysis, trace-driven replay.

Demonstrates the three toolkit capabilities of Section 5:

1. dump the DUT trace once (``TraceWriter``);
2. analyse it offline with the SQL backend (volume by type, NDE fraction,
   what-if fusion strategies);
3. re-drive the checker from the trace alone — iterating on verification
   logic without re-running the DUT.

Run:  python examples/trace_workflow.py
"""

import io

from repro import XIANGSHAN_DEFAULT
from repro.dut import DutSystem
from repro.toolkit import TraceDb, TraceReader, TraceWriter, replay_trace
from repro.workloads import build


def main() -> None:
    workload = build("microbench", iterations=150)

    # --- 1. first (and only) DUT run: dump the trace -------------------
    system = DutSystem(XIANGSHAN_DEFAULT)
    system.load_image(workload.image)
    sink = io.BytesIO()
    writer = TraceWriter(sink)
    db = TraceDb()  # in-memory SQLite; pass a path to persist
    for _ in range(workload.max_cycles):
        (bundle,) = system.cycle()
        if bundle.events:
            writer.write_cycle(bundle.cycle, bundle.events)
            db.record_cycle(bundle.cycle, bundle.events)
        if system.finished():
            break
    print(f"dumped {writer.events} events over {writer.cycles} cycles "
          f"({len(sink.getvalue())} bytes)")

    # --- 2. offline SQL analysis ---------------------------------------
    print("\ntop event types by transmitted volume:")
    for name, count, total in db.volume_by_type()[:6]:
        print(f"  {name:20s} {count:6d} events {total:9d} bytes")
    print(f"\nNDE fraction: {db.nde_fraction():.2%}")
    print(f"events/cycle: {db.events_per_cycle():.2f}")

    print("\nwhat-if fusion strategies on the recorded trace:")
    for window in (8, 32, 128):
        for differencing in (False, True):
            outcome = db.simulate_fusion(window=window,
                                         differencing=differencing)
            print(f"  window={window:4d} diff={str(differencing):5s} -> "
                  f"{outcome['wire_bytes']:8d} bytes "
                  f"({outcome['reduction']:.1f}x reduction, "
                  f"fusion ratio {outcome['fusion_ratio']:.1f})")

    # --- 3. trace-driven checking (no DUT) ------------------------------
    result = replay_trace(sink.getvalue(), workload.image)
    print(f"\ntrace-driven checking: "
          f"{'PASSED' if result.passed else 'FAILED'} "
          f"({result.events} events, exit code {result.exit_code})")

    # The trace is a portable artifact: read it anywhere.
    with TraceReader(sink.getvalue()) as reader:
        first_cycle, events = next(iter(reader))
        print(f"first recorded cycle: #{first_cycle} with "
              f"{len(events)} events: "
              + ", ".join(type(e).__name__ for e in events[:4]) + ", ...")


if __name__ == "__main__":
    main()
