#!/usr/bin/env python3
"""Parallel fuzzing campaign: all cores, deterministic aggregation.

Runs the same 12-seed differential-fuzzing campaign twice — serially
(`workers=1`) and fanned out over a process pool — and shows the
campaign executor's two guarantees:

* the aggregated report is byte-identical regardless of worker count
  (results fold in submission order, no wall-clock in the report);
* timing lives in the separate stats rollup (jobs/sec, utilization).

Run:  python examples/parallel_fuzz.py
"""

import os

from repro.workloads import fuzz_campaign

SEEDS = range(12)
LENGTH = 60


def main() -> None:
    workers = max(2, os.cpu_count() or 2)
    print(f"12-seed fuzz campaign, serial vs {workers} workers\n")

    serial = fuzz_campaign(SEEDS, length=LENGTH, workers=1)
    parallel = fuzz_campaign(SEEDS, length=LENGTH, workers=workers)

    print("deterministic campaign report (submission order):")
    print(parallel.render())
    print()

    identical = serial.render() == parallel.render()
    print(f"serial and parallel reports identical: {identical}")
    assert identical, "determinism guarantee violated"

    print()
    print("throughput rollup (wall-clock lives here, not in the report):")
    print(f"  serial   | {serial.stats.rollup()}")
    print(f"  parallel | {parallel.stats.rollup()}")


if __name__ == "__main__":
    main()
