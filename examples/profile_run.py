#!/usr/bin/env python3
"""Profiling walkthrough: where a co-simulation run spends its time.

Runs one workload twice — once bare, once under an enabled
``repro.obs.ObsContext`` — then shows the three faces of the
observability subsystem:

1. the per-stage span profile (capture → fuse → pack → transfer →
   dispatch → ref-step → compare), the table behind ``repro profile``;
2. the metric-registry counter report (same numbers as the classic
   ``render_report``, sourced from the registry snapshot);
3. the exporters: a Chrome trace-event JSON you can open in Perfetto
   (https://ui.perfetto.dev) and a JSONL metrics dump for scripting.

Run:  python examples/profile_run.py
"""

import json
import tempfile
from pathlib import Path

from repro import CONFIG_BNSD, XIANGSHAN_DEFAULT, run_cosim
from repro.obs import ObsContext, render_profile, write_chrome_trace, \
    write_metrics_jsonl
from repro.toolkit import render_report
from repro.workloads import build


def main() -> None:
    workload = build("microbench")

    # A bare run: obs defaults to the shared no-op context, so the hot
    # loop pays a single branch and result.metrics stays None.
    bare = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                     max_cycles=workload.max_cycles)
    assert bare.passed and bare.metrics is None

    # The same run under full observability.
    obs = ObsContext()
    result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                       max_cycles=workload.max_cycles, obs=obs)
    assert result.passed

    print("=== instrumented run ===")
    print(f"workload {workload.name}: {result.cycles} cycles / "
          f"{result.instructions} instructions\n")
    print(render_profile(obs.tracer))

    # Both runs render the identical counter report: the registry
    # snapshot is the same telemetry the legacy counters carried.
    assert (render_report(bare.stats)
            == render_report(result.stats, snapshot=result.metrics))
    print()
    print(render_report(result.stats, snapshot=result.metrics))

    out_dir = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    trace_path = out_dir / "run.trace.json"
    metrics_path = out_dir / "run.metrics.jsonl"
    with open(trace_path, "w", encoding="utf-8") as sink:
        write_chrome_trace(obs.tracer, sink)
    with open(metrics_path, "w", encoding="utf-8") as sink:
        write_metrics_jsonl(result.metrics, sink)

    doc = json.loads(trace_path.read_text())
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    lines = metrics_path.read_text().splitlines()
    print()
    print("=== exporters ===")
    print(f"Chrome trace : {trace_path} ({len(spans)} spans; "
          f"open in Perfetto)")
    print(f"metrics JSONL: {metrics_path} ({len(lines)} metrics)")
    busiest = max((json.loads(line) for line in lines
                   if json.loads(line)["kind"] == "counter"),
                  key=lambda m: m["value"])
    print(f"largest counter: {busiest['name']} = {busiest['value']}")


if __name__ == "__main__":
    main()
