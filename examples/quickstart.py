#!/usr/bin/env python3
"""Quickstart: co-simulate a small RISC-V program with DiffTest-H.

Assembles a program with the in-tree assembler, runs it on the XiangShan
DUT model with the fully-optimised communication stack, checks every
instruction against the golden reference model, and prints the modeled
speed on each verification platform.

Run:  python examples/quickstart.py
"""

from repro import CONFIG_BNSD, XIANGSHAN_DEFAULT, run_cosim
from repro.comm import ALL_PLATFORMS
from repro.isa import assemble
from repro.toolkit import render_report

PROGRAM = """
_start:
    li sp, 0x80100000
    li t0, 100          # sum the first 100 integers
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    li t2, 5050
    bne t1, t2, fail
    li a0, 0            # HIT GOOD TRAP
    ebreak
fail:
    li a0, 1
    ebreak
"""


def main() -> None:
    image = assemble(PROGRAM)
    result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, image,
                       max_cycles=10_000)

    print(f"co-simulation {'PASSED' if result.passed else 'FAILED'}: "
          f"{result.instructions} instructions in {result.cycles} cycles")
    if result.mismatch is not None:
        print(result.mismatch.describe())

    print()
    print(render_report(result.stats, "quickstart counters"))

    print("\nmodeled co-simulation speed:")
    for platform in ALL_PLATFORMS:
        breakdown = result.breakdown(platform,
                                     XIANGSHAN_DEFAULT.gates_millions,
                                     nonblocking=True)
        print(f"  {platform.name:26s} {breakdown.speed_khz:10.1f} KHz "
              f"(communication {breakdown.communication_fraction:.1%})")


if __name__ == "__main__":
    main()
