#!/usr/bin/env python3
"""Chaos campaign: SIGKILL workers mid-run and watch the supervisor win.

Runs the same 6-seed fuzz campaign three times:

1. fault-free, as the reference report;
2. with a *transient* chaos fault — one worker SIGKILLs itself the
   first time it picks up seed 2.  The supervised executor rebuilds the
   pool, re-queues the in-flight jobs, retries, and the final report is
   byte-identical to the reference (the supervisor is invisible when it
   wins);
3. with a *poison* job — seed 1 kills its worker on every attempt.  The
   supervisor quarantines it after ``poison_threshold`` pool breaks and
   reports it explicitly; every surviving seed's line still matches the
   reference.

Recovered or reported, never silent loss: that is the contract.

Run:  python examples/chaos_campaign.py
"""

from repro.core import CONFIG_BNSD
from repro.dut import XIANGSHAN_DEFAULT
from repro.parallel import SupervisionPolicy
from repro.service.render import render_fuzz
from repro.toolkit import POISON, ChaosExecutor, ChaosFault, ChaosPlan
from repro.workloads.fuzz import fuzz_specs

SEEDS = range(6)
LENGTH = 40
POLICY = SupervisionPolicy(poison_threshold=2, backoff_base_s=0.01,
                           backoff_cap_s=0.05)


def run_fuzz(executor):
    campaign = executor.run(fuzz_specs(SEEDS, length=LENGTH,
                                       dut_config=XIANGSHAN_DEFAULT,
                                       diff_config=CONFIG_BNSD))
    return campaign, render_fuzz(campaign, 0, len(SEEDS))


def main() -> None:
    from repro.parallel import CampaignExecutor

    print("6-seed fuzz campaign under process chaos\n")
    reference, ref_report = run_fuzz(
        CampaignExecutor(workers=2, retries=1, supervision=POLICY))
    print("fault-free reference report:")
    print(ref_report)

    # -- transient chaos: one SIGKILL, then clean ----------------------
    plan = ChaosPlan({2: ChaosFault("kill", times=1)})
    campaign, report = run_fuzz(
        ChaosExecutor(plan, workers=2, retries=1, supervision=POLICY))
    print()
    print("transient SIGKILL on seed 2's first attempt:")
    print(f"  pool restarts : {campaign.stats.pool_restarts}")
    print(f"  re-queues     : {campaign.stats.requeues}")
    print(f"  report identical to reference: {report == ref_report}")
    assert report == ref_report, "recovery must be invisible"

    # -- poison job: quarantined, loudly -------------------------------
    plan = ChaosPlan({1: ChaosFault("kill", times=POISON)})
    campaign, report = run_fuzz(
        ChaosExecutor(plan, workers=2, retries=1, supervision=POLICY))
    print()
    print("poison job (seed 1 kills its worker on every attempt):")
    print(report)
    survivors_match = all(
        line in ref_report.splitlines()
        for line in report.splitlines()
        if line.startswith("seed") and "CRASH" not in line)
    print()
    print(f"  quarantined   : "
          f"{[job.label for job in campaign.quarantined]}")
    print(f"  surviving seeds identical to reference: {survivors_match}")
    assert campaign.quarantined and survivors_match


if __name__ == "__main__":
    main()
