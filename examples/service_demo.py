#!/usr/bin/env python3
"""Verification-as-a-service: submit, watch, dedup, recover.

Stands up an in-process campaign service on a durable SQLite store and
walks the full client lifecycle:

* submit a fuzz campaign and stream its progress events;
* resubmit the identical campaign (spelled differently) and get a
  cache hit — the stored report, no simulation time;
* kill the service mid-run and restart it against the same store: the
  orphaned campaign re-queues and finishes, and determinism makes its
  report byte-identical to the cached one.

Run:  python examples/service_demo.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.service import CampaignService, InProcessClient, ServiceStore

PARAMS = {"seeds": 4, "length": 40}


async def demo(store_path: str) -> None:
    # --- first submission: runs for real, progress streams out -------
    with ServiceStore(store_path) as store:
        service = CampaignService(store, workers=2)
        client = InProcessClient(service)
        await service.start()

        reply = await client.submit("fuzz", PARAMS)
        cid = reply["campaign"]
        print(f"submitted campaign #{cid} ({reply['state']})")

        print("progress events:")
        async for event in client.watch(cid):
            if event["event"] == "progress":
                print(f"  running: {event['jobs_done']}"
                      f"/{event['jobs_total']} jobs")
            else:
                print(f"  state: {event['state']}")

        first = await client.results(cid)

        # --- identical resubmission: served from the store -----------
        # Different spelling (defaults written out, keys reordered),
        # same canonical fingerprint.
        spelled = {"length": 40, "seeds": 4, "fail_fast": False}
        reply = await client.submit("fuzz", spelled)
        print(f"\nresubmission: campaign #{reply['campaign']}, "
              f"cache hit: {reply['cached']}")
        await service.stop()

    # --- crash recovery: re-queue an interrupted campaign ------------
    # Simulate a crash by marking the finished row as still running,
    # as if the server died mid-campaign with the queue on disk.
    with ServiceStore(store_path) as store:
        store.set_state(cid, "running")
    with ServiceStore(store_path) as store:
        service = CampaignService(store, workers=2)
        client = InProcessClient(service)
        orphans = await service.start()
        print(f"\nrestart re-queued orphans: {orphans}")
        state = await client.wait(cid)
        rerun = await client.results(cid)
        await service.stop()

    print(f"re-run finished: {state}")
    identical = rerun["report"] == first["report"]
    print(f"re-run report identical to original: {identical}")
    assert identical, "determinism guarantee violated"

    print("\nstored campaign report:")
    print(first["report"])


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        asyncio.run(demo(str(Path(tmp) / "campaigns.db")))


if __name__ == "__main__":
    main()
