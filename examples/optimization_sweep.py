#!/usr/bin/env python3
"""Optimization sweep: regenerate the Table 5 ladder on a boot workload.

Runs the OS-boot-like composite workload under the four DIFF_CONFIG
levels of the paper's artifact (Z / B / BIN / EBINSD), prints the
measured communication quantities, and converts them into modeled
co-simulation speed on Palladium and the FPGA.

Run:  python examples/optimization_sweep.py
"""

from repro import (
    CONFIG_B,
    CONFIG_BN,
    CONFIG_BNSD,
    CONFIG_Z,
    XIANGSHAN_DEFAULT,
    run_cosim,
)
from repro.comm import FPGA_VU19P, PALLADIUM
from repro.workloads import build

LADDER = (
    ("Baseline (Z)", CONFIG_Z),
    ("+Batch (B)", CONFIG_B),
    ("+NonBlock (BIN)", CONFIG_BN),
    ("+Squash (EBINSD)", CONFIG_BNSD),
)


def main() -> None:
    workload = build("linux_boot_like", scale=1)
    print(f"workload: {workload.name} — {workload.description}\n")

    header = (f"{'config':18s} {'invokes/cyc':>12s} {'bytes/cyc':>10s} "
              f"{'fusion':>7s} {'PLDM KHz':>9s} {'FPGA KHz':>9s}")
    print(header)
    print("-" * len(header))
    baseline_speeds = None
    for label, config in LADDER:
        result = run_cosim(XIANGSHAN_DEFAULT, config, workload.image,
                           max_cycles=workload.max_cycles)
        assert result.passed, result.mismatch
        pldm = result.breakdown(PALLADIUM, XIANGSHAN_DEFAULT.gates_millions,
                                config.nonblocking)
        fpga = result.breakdown(FPGA_VU19P, XIANGSHAN_DEFAULT.gates_millions,
                                config.nonblocking)
        if baseline_speeds is None:
            baseline_speeds = (pldm.speed_khz, fpga.speed_khz)
        print(f"{label:18s} {result.stats.invokes_per_cycle:12.3f} "
              f"{result.stats.bytes_per_cycle:10.1f} "
              f"{result.stats.fusion_ratio:7.2f} "
              f"{pldm.speed_khz:9.1f} {fpga.speed_khz:9.1f}")

    print("\npaper reference (Table 5, XiangShan):")
    print("  Palladium: 6 -> 24 -> 71 -> 478 KHz (80x)")
    print("  FPGA:      100 -> 1300 -> 2200 -> 7800 KHz (78x)")


if __name__ == "__main__":
    main()
