#!/usr/bin/env python3
"""Straight-to-wire capture: the compiled emit→encode→pack tier.

Shows the `repro.comm.fastcapture` tier in action:

1. a capture-eligible run (JIT on, replay window off) timed with the
   tier on and off — same wire bytes, same counters, different
   wall-clock;
2. the eligibility state machine: runs that *need* event objects fall
   back to the legacy path and record why in
   ``RunStats.capture_fallbacks`` (and, under observability, in the
   ``capture.fallback.*`` metric counters);
3. the invisibility contract: reports and metric snapshots are
   byte-identical with the knob on and off.

Run:  python examples/fast_capture.py
"""

import time

from repro import CONFIG_BNSD, XIANGSHAN_DEFAULT, run_cosim
from repro.obs import ObsContext, snapshot_from_stats
from repro.toolkit import render_report
from repro.workloads import build


def timed(config, workload, **kwargs):
    start = time.perf_counter()
    result = run_cosim(XIANGSHAN_DEFAULT, config, workload.image,
                       max_cycles=workload.max_cycles, **kwargs)
    elapsed = time.perf_counter() - start
    assert result.passed, result.mismatch
    return result, result.cycles / elapsed


def main() -> None:
    workload = build("alu_hotloop")

    # ------------------------------------------------------------------
    # 1. Knob on vs off under a capture-eligible configuration.  The
    #    default config keeps a replay window, which buffers the event
    #    objects themselves — a throughput run turns it off.
    # ------------------------------------------------------------------
    eligible = CONFIG_BNSD.with_(jit=True, replay=False)
    fast, fast_cps = timed(eligible, workload)
    slow, slow_cps = timed(eligible.with_(fast_capture=False), workload)

    print("=== straight-to-wire capture on alu_hotloop ===")
    print(f"    fast_capture=True : {fast_cps:10,.0f} cycles/sec  "
          f"fallbacks={fast.stats.capture_fallbacks}")
    print(f"    fast_capture=False: {slow_cps:10,.0f} cycles/sec")
    print(f"    speedup: {fast_cps / slow_cps:.2f}x")

    # ------------------------------------------------------------------
    # 2. Fallback reasons.  The reasons describe the *run*, not the
    #    knob: a replay window needs the event objects, so the tier
    #    steps aside and says so.
    # ------------------------------------------------------------------
    replaying, _ = timed(eligible.with_(replay=True), workload)
    print("\n=== eligibility ===")
    print(f"    replay=False run: capture_fallbacks="
          f"{fast.stats.capture_fallbacks!r} (tier engaged)")
    print(f"    replay=True  run: capture_fallbacks="
          f"{replaying.stats.capture_fallbacks!r}")

    # Under observability the same reasons surface as metric counters
    # (obs itself is a fallback reason: the instrumented cycle traces
    # per-bundle event objects).
    observed, _ = timed(eligible, workload, obs=ObsContext())
    fallback_counters = {
        name: record.value
        for name, record in sorted(observed.metrics.metrics.items())
        if name.startswith("capture.fallback.")
    }
    print(f"    obs-instrumented run: {fallback_counters}")

    # ------------------------------------------------------------------
    # 3. Invisibility: the tier changes wall-clock, never content.
    # ------------------------------------------------------------------
    assert render_report(fast.stats) == render_report(slow.stats)
    assert snapshot_from_stats(fast.stats).metrics \
        == snapshot_from_stats(slow.stats).metrics
    print("\n=== invisibility ===")
    print("    reports and metric snapshots are byte-identical "
          "with the tier on and off")
    print("\n" + render_report(fast.stats))


if __name__ == "__main__":
    main()
