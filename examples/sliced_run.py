#!/usr/bin/env python3
"""Checkpoint-sliced sharding: one long run, N slices, same report.

A single co-simulation is serial — the campaign executor can fan out
*many* runs, but not speed up *one long* run.  Checkpoint slicing cuts
the run at quiescent epoch barriers, executes each cycle window as an
independent job (resumed from a boundary snapshot), and stitches the
per-slice windows back into a report that is **byte-identical** to the
serial run under the same `slice_epoch_cycles`.

This example runs the same workload three ways — serial, sliced on one
worker, sliced on a pool — and verifies the identity.

Run:  python examples/sliced_run.py
"""

import os
import time

from repro.core import CONFIG_BNSD, CoSimulation
from repro.dut import DutSystem, NUTSHELL
from repro.parallel import epoch_for, sliced_run
from repro.toolkit import render_report
from repro.workloads import build

SLICES = 4
WORKLOAD = build("memory_churn", array_kb=16, passes=2)


def measure_run_length() -> int:
    """Forward a bare DUT (no REF, no checking — about twice the speed
    of co-simulation) to find the cycle the workload finishes at, so the
    slice windows actually cover the run."""
    probe = DutSystem(NUTSHELL, seed=2025)
    probe.load_image(WORKLOAD.image)
    cycles = 0
    while not probe.finished() and cycles < WORKLOAD.max_cycles:
        probe.cycle()
        cycles += 1
    return cycles


def main() -> None:
    workers = max(2, os.cpu_count() or 2)
    max_cycles = measure_run_length()
    epoch = epoch_for(max_cycles, SLICES)
    print(f"workload : {WORKLOAD.name} ({WORKLOAD.description})")
    print(f"slicing  : {max_cycles} cycles as {SLICES} slices x "
          f"{epoch} cycles, pool of {workers} workers\n")

    config = CONFIG_BNSD.with_(slice_epoch_cycles=epoch)
    t0 = time.perf_counter()
    serial = CoSimulation(NUTSHELL, config, WORKLOAD.image,
                          seed=2025).run(max_cycles=max_cycles)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    solo = sliced_run(NUTSHELL, CONFIG_BNSD, WORKLOAD.image,
                      max_cycles=max_cycles, slices=SLICES, workers=1,
                      seed=2025)
    t_solo = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = sliced_run(NUTSHELL, CONFIG_BNSD, WORKLOAD.image,
                        max_cycles=max_cycles, slices=SLICES,
                        workers=workers, seed=2025)
    t_pool = time.perf_counter() - t0

    print("per-slice windows (cycles, events checked):")
    for piece in pooled.slices:
        print(f"  slice {piece.slice_index}: "
              f"({piece.start_cycle:>6}, {piece.end_cycle:>6}] "
              f"{piece.counters.cycles:>6} cycles, "
              f"{piece.events_transmitted:>6} events")
    print()

    report = render_report(pooled.stats, title="stitched counters")
    print(report)
    print()

    identical = (render_report(serial.stats,
                               title="stitched counters") == report
                 and serial.summarize() == pooled.summary
                 and solo.summary == pooled.summary)
    print(f"sliced report byte-identical to serial: {identical}")
    assert identical, "slice-equivalence guarantee violated"

    print(f"\nwall clock: serial {t_serial:.2f}s | sliced x1 "
          f"{t_solo:.2f}s | sliced x{workers} {t_pool:.2f}s")
    print("(identity is the guarantee; speedup needs long workloads "
          "and spare cores)")


if __name__ == "__main__":
    main()
