#!/usr/bin/env python3
"""Bug hunt: inject a hardware bug, detect it, and let Replay localise it.

Reproduces the paper's debugging story (Section 4.4 / Table 6): a
store-queue bug is seeded into the DUT; the fused checks flag a mismatch;
Replay reverts the REF via the compensation log, requests the buffered
unfused events by token, and reprocesses them instruction by instruction
to pinpoint the faulty instruction and component.

Run:  python examples/bug_hunt.py
"""

from repro import CONFIG_BNSD, XIANGSHAN_DEFAULT, CoSimulation
from repro.dut import FAULT_CATALOGUE, fault_by_name
from repro.isa import assemble

PROGRAM = """
_start:
    li sp, 0x80100000
    li t0, 500
    li t1, 0
loop:
    add t1, t1, t0
    sd t1, -8(sp)
    ld t2, -8(sp)
    add t1, t1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ebreak
"""


def hunt(fault_name: str, trigger: int = 800) -> None:
    print(f"=== injecting {fault_name!r} at instruction {trigger} ===")
    spec = fault_by_name(fault_name)
    print(f"    category: {spec.category}")
    print(f"    models:   {spec.description} (XiangShan PR {spec.pull_request})")

    cosim = CoSimulation(XIANGSHAN_DEFAULT, CONFIG_BNSD, assemble(PROGRAM))
    spec.install(cosim.dut.cores[0], trigger)
    result = cosim.run(max_cycles=100_000)

    if result.mismatch is None:
        print("    bug escaped (architecturally dead corruption)\n")
        return
    print(f"    detected at cycle {result.mismatch.cycle}: "
          f"{result.mismatch.describe()}")
    print()
    print(result.debug_report.render())
    print()


def main() -> None:
    for name in ("store_queue_mismatch", "control_flow_wdata",
                 "cache_line_corruption"):
        hunt(name)

    print("available fault catalogue (Table 6):")
    for spec in FAULT_CATALOGUE:
        print(f"  {spec.pull_request:6s} {spec.name:28s} {spec.category}")


if __name__ == "__main__":
    main()
