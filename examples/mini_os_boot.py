#!/usr/bin/env python3
"""Full-system demo: co-simulate a miniature OS boot.

Runs the ``mini_os`` workload — M-mode firmware, Sv39 page tables, an
S-mode preemptive scheduler and two U-mode processes — through the fully
optimised DiffTest-H stack, then prints the event profile showing how
broadly the verification coverage is exercised (interrupts, exceptions,
TLB fills, CSR churn) and the modeled speed ladder for this
"Linux-boot-in-miniature" workload.

Run:  python examples/mini_os_boot.py
"""

from repro import (
    CONFIG_B,
    CONFIG_BN,
    CONFIG_BNSD,
    CONFIG_Z,
    XIANGSHAN_DEFAULT,
    run_cosim,
)
from repro.comm import PALLADIUM
from repro.toolkit import render_event_profile
from repro.workloads import build


def main() -> None:
    workload = build("mini_os", timeslices=10)
    print(f"booting: {workload.description}\n")

    result = run_cosim(XIANGSHAN_DEFAULT, CONFIG_BNSD, workload.image,
                       max_cycles=workload.max_cycles)
    status = "clean shutdown" if result.passed else "FAILED"
    print(f"{status}: {result.instructions} instructions over "
          f"{result.cycles} cycles")
    print(f"interrupts taken  : "
          f"{result.stats.profile.counts.get(2, 0)}")
    print(f"exceptions/ecalls : "
          f"{result.stats.profile.counts.get(1, 0)}")
    print(f"TLB fills         : "
          f"{result.stats.profile.counts.get(20, 0)} L1, "
          f"{result.stats.profile.counts.get(21, 0)} L2")
    print(f"NDEs sent ahead   : {result.stats.nde_sent_ahead} "
          f"(fusion breaks: {result.stats.fusion_breaks})")

    print("\nactive event types during boot:")
    print(render_event_profile(result.stats, top=12))

    print("\noptimisation ladder on this workload (modeled, Palladium):")
    for config in (CONFIG_Z, CONFIG_B, CONFIG_BN, CONFIG_BNSD):
        run = run_cosim(XIANGSHAN_DEFAULT, config, workload.image,
                        max_cycles=workload.max_cycles)
        speed = run.breakdown(PALLADIUM, XIANGSHAN_DEFAULT.gates_millions,
                              config.nonblocking)
        print(f"  {config.name:8s} {speed.speed_khz:8.1f} KHz")


if __name__ == "__main__":
    main()
